package core

import (
	"context"

	"github.com/example/cachedse/internal/obs"
	"github.com/example/cachedse/internal/trace"
)

// stripReaderWithSpan runs the streaming strip pass over a reference
// stream inside a "strip" span when ctx carries a recorder. The stream is
// consumed to completion; only the stripped form and one decoder block
// are ever resident, never the full reference slice.
func stripReaderWithSpan(ctx context.Context, rr trace.RefReader, sc *Scratch) (*trace.Stripped, error) {
	_, span := obs.StartSpan(ctx, "strip")
	var s *trace.Stripped
	var err error
	if sc != nil {
		s, err = trace.StripReaderInto(rr, &sc.stripped)
	} else {
		s, err = trace.StripReader(rr)
	}
	if err != nil {
		return nil, err
	}
	if sc != nil {
		sc.note(s.N())
	}
	if span != nil {
		span.SetAttr("n", s.N())
		span.SetAttr("n_unique", s.NUnique())
		span.End()
	}
	return s, nil
}
