package core

import (
	"context"

	"github.com/example/cachedse/internal/obs"
	"github.com/example/cachedse/internal/trace"
)

// ExploreReader runs the exploration over a stream of references instead
// of a materialized *trace.Trace. The prelude (strip + MRCT) is built
// directly from the stream, so a ctz1 file can flow from disk into the
// engine holding only the stripped form and one decoder block in memory —
// never the full reference slice. The stream is consumed to completion.
func ExploreReader(rr trace.RefReader, opts Options) (*Result, error) {
	return ExploreReaderContext(context.Background(), rr, opts)
}

// ExploreReaderContext is ExploreReader with cancellation.
func ExploreReaderContext(ctx context.Context, rr trace.RefReader, opts Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, span := obs.StartSpan(ctx, "strip")
	s, err := trace.StripReader(rr)
	if err != nil {
		return nil, err
	}
	if span != nil {
		span.SetAttr("n", s.N())
		span.SetAttr("n_unique", s.NUnique())
		span.End()
	}
	m, err := BuildMRCTContext(ctx, s)
	if err != nil {
		return nil, err
	}
	return ExploreStrippedContext(ctx, s, m, opts)
}
