// Package core implements the paper's analytical cache design-space
// exploration: given a memory reference trace and a miss budget K, it
// computes — without simulation — for every power-of-two cache depth D the
// minimum associativity A such that an A-way LRU cache of depth D incurs at
// most K non-cold misses on the trace.
//
// The prelude phase (§2.2) strips the trace (internal/trace), derives
// per-bit zero/one sets, and builds two structures:
//
//   - the Binary Cache Allocation Tree (BCAT, Algorithm 1), whose level-l
//     sets are exactly the groups of unique references mapping to each row
//     of a depth-2^l cache;
//   - the Memory Reference Conflict Table (MRCT, Algorithm 2), which
//     records, for every non-cold occurrence of a reference, the set of
//     distinct references touched since its previous occurrence.
//
// The postlude phase (§2.3, Algorithm 3) combines them: a re-occurrence of
// reference e mapping to row set S is a miss in an A-way cache exactly when
// |S ∩ C| >= A, where C is that occurrence's conflict set — for LRU this
// predicate is exact, since |S ∩ C| is the number of distinct same-set
// blocks touched since e's last use. Accumulating a histogram of |S ∩ C|
// per level therefore yields the miss count of every associativity at every
// depth in one traversal, from which the minimal A per (depth, K) follows.
//
// Explore is the production entry point and uses the depth-first combined
// formulation of §2.4: BCAT nodes are never materialised beyond the current
// root-to-leaf path, so space stays linear in the trace. BuildBCAT and
// Options.Engine = EngineBCAT keep the explicit tree of Algorithms 1 and 3
// available for inspection, teaching and cross-validation.
package core
