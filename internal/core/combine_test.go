package core

import (
	"context"
	"testing"
	"testing/quick"

	"github.com/example/cachedse/internal/cache"
	"github.com/example/cachedse/internal/trace"
)

func TestCombineEmpty(t *testing.T) {
	if _, err := Combine(); err == nil {
		t.Fatal("Combine() accepted zero inputs")
	}
}

func TestCombineSingleIsIdentity(t *testing.T) {
	r, err := Explore(context.Background(), trace.FromAddrs(trace.DataRead, []uint32{1, 2, 1, 3, 1}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Combine(r)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsIdentical(r, c) {
		t.Fatal("Combine of one result is not the identity")
	}
}

// The exactness claim: combined analytical misses equal a simulation of
// the concatenated traces with a flush at the application switch, for
// applications in disjoint address ranges.
func TestCombineMatchesFlushedSimulation(t *testing.T) {
	appA := trace.FromAddrs(trace.DataRead, []uint32{0, 8, 0, 8, 0, 8, 3, 0})
	appB := trace.FromAddrs(trace.DataRead, []uint32{0x40, 0x48, 0x40, 0x48, 0x44, 0x40})

	ra, err := Explore(context.Background(), appA, Options{MaxDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Explore(context.Background(), appB, Options{MaxDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	combined, err := Combine(ra, rb)
	if err != nil {
		t.Fatal(err)
	}

	for _, depth := range []int{1, 2, 4, 8, 16} {
		for _, assoc := range []int{1, 2, 3} {
			c := cache.MustNew(cache.Config{Depth: depth, Assoc: assoc})
			resA := c.Run(appA)
			c.Flush()
			resB := c.Run(appB)
			simMisses := resA.Misses + resB.Misses
			if got := combined.Level(depth).Misses(assoc); got != simMisses {
				t.Errorf("D=%d A=%d: combined %d != flushed simulation %d", depth, assoc, got, simMisses)
			}
		}
	}
}

// Property: combined misses are the sum of per-app misses at every level
// and associativity, and N/N' add.
func TestQuickCombineAdds(t *testing.T) {
	f := func(as, bs []uint8) bool {
		ta := trace.New(0)
		for _, a := range as {
			ta.Append(trace.Ref{Addr: uint32(a), Kind: trace.DataRead})
		}
		tb := trace.New(0)
		for _, b := range bs {
			tb.Append(trace.Ref{Addr: uint32(b), Kind: trace.DataRead})
		}
		opt := Options{MaxDepth: 64}
		ra, err := Explore(context.Background(), ta, opt)
		if err != nil {
			return false
		}
		rb, err := Explore(context.Background(), tb, opt)
		if err != nil {
			return false
		}
		c, err := Combine(ra, rb)
		if err != nil {
			return false
		}
		if c.N != ra.N+rb.N || c.NUnique != ra.NUnique+rb.NUnique {
			return false
		}
		for i := range c.Levels {
			for a := 1; a <= c.Levels[i].AZero+1; a++ {
				want := 0
				if i < len(ra.Levels) {
					want += ra.Levels[i].Misses(a)
				}
				if i < len(rb.Levels) {
					want += rb.Levels[i].Misses(a)
				}
				if c.Levels[i].Misses(a) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheFlushSemantics(t *testing.T) {
	c := cache.MustNew(cache.Config{Depth: 4, Assoc: 2})
	c.Access(trace.Ref{Addr: 1, Kind: trace.DataWrite}) // dirty
	c.Access(trace.Ref{Addr: 2, Kind: trace.DataRead})
	c.Flush()
	if c.Contains(1) || c.Contains(2) {
		t.Fatal("lines survived the flush")
	}
	if got := c.Results().Writebacks; got != 1 {
		t.Fatalf("Writebacks = %d, want 1 (dirty line)", got)
	}
	// Re-access: misses, but NOT cold (seen before the flush).
	c.Access(trace.Ref{Addr: 1, Kind: trace.DataRead})
	if got := c.Results().Misses; got != 1 {
		t.Fatalf("post-flush non-cold misses = %d, want 1", got)
	}
}
