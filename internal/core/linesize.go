package core

import (
	"context"
	"fmt"

	"github.com/example/cachedse/internal/trace"
)

// Line-size exploration: the first of the paper's future-work axes ("our
// future direction of research will focus on incorporating additional
// design flexibility such as cache management policies, line size, ...",
// §4). The analytical machinery is line-size-agnostic — it reasons about
// whatever block addresses the trace carries — so exploring line size L
// reduces to exploring the trace with the low log2(L) word-offset bits
// stripped: two references collide in a (D, A, L) cache exactly when their
// line addresses collide in the corresponding (D, A, 1) cache. Cold misses
// do change with L (fewer, larger lines), so each LineResult carries its
// own cold count and budgets must be interpreted per line size.

// LineResult is the exploration of one line size.
type LineResult struct {
	// LineWords is the line size in words (power of two).
	LineWords int
	// Result explores depth x associativity at this line size; miss
	// counts are non-cold misses of (D, A, LineWords) caches.
	Result *Result
	// Cold is the number of cold misses (distinct lines touched).
	Cold int
}

// LineSizes runs the analytical exploration for each requested line size
// (words, powers of two), deriving each line-shifted trace and exploring
// it under opts.
func LineSizes(ctx context.Context, t *trace.Trace, opts Options, lineWords []int) ([]LineResult, error) {
	out := make([]LineResult, 0, len(lineWords))
	for _, lw := range lineWords {
		if lw < 1 || lw&(lw-1) != 0 {
			return nil, fmt.Errorf("core: line size %d words is not a power of two >= 1", lw)
		}
		shift := uint(0)
		for l := lw; l > 1; l >>= 1 {
			shift++
		}
		lined := trace.New(t.Len())
		for _, r := range t.Refs {
			lined.Append(trace.Ref{Addr: r.Addr >> shift, Kind: r.Kind})
		}
		r, err := Explore(ctx, lined, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, LineResult{LineWords: lw, Result: r, Cold: r.NUnique})
	}
	return out, nil
}

// BestLine returns, for a miss budget k and a capacity limit in words, the
// (line size, depth, assoc) combination with the fewest total misses (cold
// + non-cold) that fits the capacity, breaking ties toward smaller size.
// It returns ok=false when no explored combination fits.
//
// Total misses — not just the conflict misses the budget constrains — is
// the right objective across line sizes, because larger lines trade cold
// misses for conflict misses and comparing non-cold counts alone would
// always favour the largest line.
func BestLine(lines []LineResult, k int, capWords int) (lw int, ins Instance, ok bool) {
	bestMisses := -1
	bestSize := -1
	for _, lr := range lines {
		for _, l := range lr.Result.Levels {
			a := l.MinAssoc(k)
			size := l.Depth * a * lr.LineWords
			if size > capWords {
				continue
			}
			total := lr.Cold + l.Misses(a)
			if bestMisses < 0 || total < bestMisses ||
				(total == bestMisses && size < bestSize) {
				bestMisses, bestSize = total, size
				lw, ins, ok = lr.LineWords, Instance{Depth: l.Depth, Assoc: a}, true
			}
		}
	}
	return lw, ins, ok
}
