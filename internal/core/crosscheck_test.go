package core

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/example/cachedse/internal/cache"
	"github.com/example/cachedse/internal/onepass"
	"github.com/example/cachedse/internal/trace"
	"github.com/example/cachedse/internal/tracegen"
)

// traceFromBytes builds a bounded-address trace from random bytes.
func traceFromBytes(bs []uint8, mod uint32) *trace.Trace {
	t := trace.New(len(bs))
	for _, b := range bs {
		t.Append(trace.Ref{Addr: uint32(b) % mod, Kind: trace.DataRead})
	}
	return t
}

// The paper's central guarantee: the analytical model counts exactly the
// non-cold misses of an LRU set-associative cache. Verify against the
// event-driven simulator across random traces, depths and associativities.
func TestQuickAnalyticalMatchesSimulator(t *testing.T) {
	f := func(bs []uint8, depthPow, assocRaw, modRaw uint8) bool {
		mod := uint32(modRaw)%120 + 8
		tr := traceFromBytes(bs, mod)
		r, err := Explore(context.Background(), tr, Options{})
		if err != nil {
			return false
		}
		depth := 1 << (depthPow % uint8(len(r.Levels)))
		assoc := 1 + int(assocRaw%6)
		res, err := cache.Simulate(cache.Config{Depth: depth, Assoc: assoc}, tr)
		if err != nil {
			return false
		}
		return r.Level(depth).Misses(assoc) == res.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The analytical histogram tail must agree with the Mattson one-pass
// profile at every depth and associativity (two independent formulations
// of the same quantity).
func TestQuickAnalyticalMatchesOnePass(t *testing.T) {
	f := func(bs []uint8, modRaw uint8) bool {
		mod := uint32(modRaw)%120 + 8
		tr := traceFromBytes(bs, mod)
		r, err := Explore(context.Background(), tr, Options{})
		if err != nil {
			return false
		}
		for _, l := range r.Levels {
			p, err := onepass.Run(tr, l.Depth)
			if err != nil {
				return false
			}
			maxA := l.AZero
			if p.MaxAssoc() > maxA {
				maxA = p.MaxAssoc()
			}
			for a := 1; a <= maxA+1; a++ {
				if l.Misses(a) != p.Misses(a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// The emitted optimal instances must honour the budget when simulated, and
// must be minimal: one step less associativity must break the budget.
func TestQuickOptimalSetIsOptimal(t *testing.T) {
	f := func(bs []uint8, kRaw uint8) bool {
		tr := traceFromBytes(bs, 64)
		st := trace.ComputeStats(tr)
		k := int(kRaw) % (st.MaxMisses + 1)
		r, err := Explore(context.Background(), tr, Options{})
		if err != nil {
			return false
		}
		for _, ins := range r.OptimalSet(k) {
			res, err := cache.Simulate(cache.Config{Depth: ins.Depth, Assoc: ins.Assoc}, tr)
			if err != nil {
				return false
			}
			if res.Misses > k {
				return false // budget violated
			}
			if ins.Assoc > 1 {
				res2, err := cache.Simulate(cache.Config{Depth: ins.Depth, Assoc: ins.Assoc - 1}, tr)
				if err != nil {
					return false
				}
				if res2.Misses <= k {
					return false // not minimal
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The naive Algorithm 2 and the hash/LRU-stack MRCT must describe the same
// conflict structure: identical miss counts through the postlude.
func TestQuickMRCTNaiveEquivalent(t *testing.T) {
	f := func(bs []uint8) bool {
		if len(bs) > 60 {
			bs = bs[:60] // the naive build is O(N·N')
		}
		tr := traceFromBytes(bs, 32)
		s := trace.Strip(tr)
		fast := BuildMRCT(s)
		naive := BuildMRCTNaive(s)
		// Compare per-id conflict multisets.
		for id := 0; id < s.NUnique(); id++ {
			a := fast.ConflictSets(id)
			b := naive[id]
			if len(a) != len(b) {
				return false
			}
			key := func(set []int32) string {
				out := make([]byte, 0, len(set)*4)
				for _, v := range set {
					out = append(out, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
				}
				return string(out)
			}
			am := map[string]int{}
			for _, set := range a {
				am[key(set)]++
			}
			for _, set := range b {
				am[key(set)]--
			}
			for _, n := range am {
				if n != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// DFS and materialised-BCAT postludes agree on random traces.
func TestQuickDFSMatchesBCAT(t *testing.T) {
	f := func(bs []uint8) bool {
		tr := traceFromBytes(bs, 64)
		s := trace.Strip(tr)
		m := BuildMRCT(s)
		dfs, err := Explore(context.Background(), Prelude{Stripped: s, MRCT: m}, Options{})
		if err != nil {
			return false
		}
		mat, err := Explore(context.Background(), Prelude{Stripped: s, MRCT: m}, Options{Engine: EngineBCAT})
		if err != nil {
			return false
		}
		if len(dfs.Levels) != len(mat.Levels) {
			return false
		}
		for i := range dfs.Levels {
			hi := dfs.Levels[i].AZero + 1
			for a := 1; a <= hi; a++ {
				if dfs.Levels[i].Misses(a) != mat.Levels[i].Misses(a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// diffResults demands the strongest equality the engines promise:
// bit-identical Results — same level structure, same AZero, and
// element-for-element equal histograms (not just equal miss counts). It
// returns "" when identical, else a description of the first divergence.
func diffResults(a, b *Result) string {
	if a.N != b.N || a.NUnique != b.NUnique {
		return fmt.Sprintf("stats differ: (N=%d,N'=%d) vs (N=%d,N'=%d)", a.N, a.NUnique, b.N, b.NUnique)
	}
	if len(a.Levels) != len(b.Levels) {
		return fmt.Sprintf("level counts differ: %d vs %d", len(a.Levels), len(b.Levels))
	}
	for i := range a.Levels {
		la, lb := a.Levels[i], b.Levels[i]
		if la.Depth != lb.Depth {
			return fmt.Sprintf("level %d: depth %d vs %d", i, la.Depth, lb.Depth)
		}
		if la.AZero != lb.AZero {
			return fmt.Sprintf("depth %d: AZero %d vs %d", la.Depth, la.AZero, lb.AZero)
		}
		if len(la.Hist) != len(lb.Hist) {
			return fmt.Sprintf("depth %d: Hist lengths %d vs %d", la.Depth, len(la.Hist), len(lb.Hist))
		}
		for d := range la.Hist {
			if la.Hist[d] != lb.Hist[d] {
				return fmt.Sprintf("depth %d: Hist[%d] = %d vs %d", la.Depth, d, la.Hist[d], lb.Hist[d])
			}
		}
	}
	return ""
}

// The optimized engines must stay bit-identical across every execution
// strategy: sequential DFS, materialised BCAT, and the work-stealing
// parallel postlude at several worker counts, over loop-, zipf-, and
// uniform-shaped synthetic workloads with fixed seeds. This is the
// regression gate for the hybrid conflict-set representation, the
// hash-deduped MRCT, and the parallel split/steal rework.
func TestCrossCheckEnginesBitIdentical(t *testing.T) {
	for _, seed := range []int64{1, 7, 4242} {
		rng := rand.New(rand.NewSource(seed))
		workloads := map[string]*trace.Trace{
			"loop":    tracegen.Loop(uint32(rng.Intn(512)), 32+rng.Intn(64), 20+rng.Intn(40)),
			"zipf":    tracegen.Zipf(rng, 0, 128+rng.Intn(256), 3000+rng.Intn(3000), 1.1+rng.Float64()),
			"uniform": tracegen.Uniform(rng, 0, 64+rng.Intn(192), 2000+rng.Intn(2000)),
		}
		for name, tr := range workloads {
			t.Run(fmt.Sprintf("%s/seed=%d", name, seed), func(t *testing.T) {
				s := trace.Strip(tr)
				m := BuildMRCT(s)
				seq, err := Explore(context.Background(), Prelude{Stripped: s, MRCT: m}, Options{})
				if err != nil {
					t.Fatal(err)
				}
				mat, err := Explore(context.Background(), Prelude{Stripped: s, MRCT: m}, Options{Engine: EngineBCAT})
				if err != nil {
					t.Fatal(err)
				}
				if d := diffResults(seq, mat); d != "" {
					t.Fatalf("BCAT vs DFS: %s", d)
				}
				for _, workers := range []int{2, 3, 4, 8} {
					par, err := Explore(context.Background(), Prelude{Stripped: s, MRCT: m}, Options{Workers: workers})
					if err != nil {
						t.Fatal(err)
					}
					if d := diffResults(seq, par); d != "" {
						t.Fatalf("parallel(workers=%d) vs DFS: %s", workers, d)
					}
				}

				// The ctz1 pack/unpack cycle must be invisible to the
				// engine: exploring the round-tripped trace, and
				// streaming the packed bytes straight into the engine
				// without materializing a *Trace, both reproduce the
				// text path's Result bit for bit.
				var packed bytes.Buffer
				if err := trace.WriteCTZ1(&packed, tr); err != nil {
					t.Fatal(err)
				}
				unpacked, err := trace.ReadCTZ1(bytes.NewReader(packed.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				viaPacked, err := Explore(context.Background(), unpacked, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if d := diffResults(seq, viaPacked); d != "" {
					t.Fatalf("explore over unpack(pack(t)) vs direct: %s", d)
				}
				dec, err := trace.NewCTZ1Decoder(bytes.NewReader(packed.Bytes()), trace.Limits{})
				if err != nil {
					t.Fatal(err)
				}
				streamed, err := Explore(context.Background(), dec, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if d := diffResults(seq, streamed); d != "" {
					t.Fatalf("streaming explore over ctz1 vs direct: %s", d)
				}
			})
		}
	}
}

// Monotonicity observed throughout Tables 7-30: for a fixed depth the
// required associativity never increases as the budget grows.
func TestQuickMinAssocMonotoneInBudget(t *testing.T) {
	f := func(bs []uint8) bool {
		tr := traceFromBytes(bs, 64)
		r, err := Explore(context.Background(), tr, Options{})
		if err != nil {
			return false
		}
		for _, l := range r.Levels {
			prev := l.MinAssoc(0)
			for k := 1; k <= 20; k++ {
				a := l.MinAssoc(k)
				if a > prev {
					return false
				}
				prev = a
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// A deterministic, larger end-to-end cross-check with a loopy synthetic
// workload resembling embedded kernels.
func TestAnalyticalMatchesSimulatorLoopyWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	tr := trace.New(0)
	// Three nested loop bodies with strided array walks and a few globals.
	for outer := 0; outer < 40; outer++ {
		for i := 0; i < 32; i++ {
			tr.Append(trace.Ref{Addr: uint32(0x100 + i), Kind: trace.DataRead})
			tr.Append(trace.Ref{Addr: uint32(0x200 + i*2), Kind: trace.DataRead})
			tr.Append(trace.Ref{Addr: 0x400, Kind: trace.DataWrite})
			if i%4 == 0 {
				tr.Append(trace.Ref{Addr: uint32(0x300 + rng.Intn(16)), Kind: trace.DataRead})
			}
		}
	}
	r, err := Explore(context.Background(), tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, depth := range []int{1, 4, 16, 64, 256} {
		for _, assoc := range []int{1, 2, 4} {
			res, err := cache.Simulate(cache.Config{Depth: depth, Assoc: assoc}, tr)
			if err != nil {
				t.Fatal(err)
			}
			if got := r.Level(depth).Misses(assoc); got != res.Misses {
				t.Errorf("depth %d assoc %d: analytical %d != simulated %d", depth, assoc, got, res.Misses)
			}
		}
	}
}
