package core

import (
	"context"
	"sync"
	"sync/atomic"

	"github.com/example/cachedse/internal/bitset"
	"github.com/example/cachedse/internal/obs"
	"github.com/example/cachedse/internal/trace"
)

// This file holds the parallel postlude: Explore with Workers > 1 fans
// the accumulate pass out over a work-stealing pool. The paper observes
// that the set formulation "allows for execution of the algorithm on a
// cluster of machines" (§2.4); the same independence yields a
// shared-memory parallelisation here.
//
// The dominant cost is scanning conflict sets: every non-cold occurrence
// of every unique reference is intersected with its row set at every
// level, and occurrences of different references are independent. A single
// split pass walks the BCAT once and enqueues (level, row set) work items
// — large row sets carved into identifier-range chunks — onto per-worker
// queues; workers drain their own queue and steal from the others when it
// runs dry, so nobody repeats the tree walk and load imbalance between
// conflict-heavy and conflict-free rows evens out dynamically. Per-worker
// histograms merge associatively, so results are bit-identical to the
// serial DFS.

// workItem is one unit of postlude work: accumulate the references of set
// whose identifiers fall in [lo, hi) into the level's histogram. The set
// pointer is shared between the chunks of one row; items never mutate it.
type workItem struct {
	set    *bitset.Set
	level  int32
	lo, hi int32
}

// chunkIDs is the identifier-range granularity work items are carved at.
// Word-aligned so ForEachRange never splits a word between two items; small
// enough that the root set of a 40k/1000 trace yields an order of
// magnitude more items than workers, which is what lets stealing balance
// skewed occurrence counts.
const chunkIDs = 256

// splitWork performs the BCAT split once, appending a work item (or
// several chunks for large rows) for every node the sequential DFS would
// visit. Returns the items and the row-set count per level, or ctx's
// error if cancelled mid-walk. Row sets come from sc's freelist — unlike
// the DFS, every set stays live until the workers drain the items, so the
// freelist holds the whole tree's sets at once; the item slice itself is
// also pooled.
func splitWork(s *trace.Stripped, levels int, chk *ctxCheck, sc *Scratch) ([]workItem, []int, error) {
	sc.resetSets()
	zo := s.ZeroOneSetsAlloc(levels, sc.newSet)
	items := sc.items[:0]
	lvlRows := make([]int, levels+1)
	enqueue := func(set *bitset.Set, level int) {
		lvlRows[level]++
		n := int32(set.Cap())
		if set.Count() <= chunkIDs {
			items = append(items, workItem{set: set, level: int32(level), lo: 0, hi: n})
			return
		}
		for lo := int32(0); lo < n; lo += chunkIDs {
			hi := lo + chunkIDs
			if hi > n {
				hi = n
			}
			items = append(items, workItem{set: set, level: int32(level), lo: lo, hi: hi})
		}
	}
	var visit func(set *bitset.Set, level int)
	visit = func(set *bitset.Set, level int) {
		if chk.stop() {
			return
		}
		enqueue(set, level)
		if level >= levels || set.Count() < 2 {
			return
		}
		left := sc.newSet(set.Cap())
		right := sc.newSet(set.Cap())
		left.And(set, zo[level].Zero)
		right.And(set, zo[level].One)
		visit(left, level+1)
		visit(right, level+1)
	}
	root := sc.newSet(s.NUnique())
	for id := 0; id < s.NUnique(); id++ {
		root.Add(id)
	}
	visit(root, 0)
	sc.items = items[:0]
	if chk.err != nil {
		return nil, nil, chk.err
	}
	return items, lvlRows, nil
}

// stealQueue is one worker's share of the item list. Items are only ever
// pushed before the workers start, so a single atomic cursor per queue is
// a race-free pop for both the owner and thieves.
type stealQueue struct {
	items []workItem
	next  atomic.Int64
}

func (q *stealQueue) pop() (workItem, bool) {
	n := q.next.Add(1) - 1
	if int(n) >= len(q.items) {
		return workItem{}, false
	}
	return q.items[n], true
}

// exploreParallel is the work-stealing postlude. workers has already been
// resolved (> 1) by Explore; tiny traces still fall back to the serial
// DFS, whose output is bit-identical. The split sets, item queues and the
// workers' private histograms all come from sc; workers touch disjoint
// scratch regions, so the pool contract (one exploration per Scratch)
// holds across the fan-out.
func exploreParallel(ctx context.Context, s *trace.Stripped, m *MRCT, opts Options, workers int, sc *Scratch) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if sc == nil {
		sc = &Scratch{}
	}
	levels, err := levelCount(s, opts)
	if err != nil {
		return nil, err
	}
	if workers == 1 || s.NUnique() < 2*workers || levels == 0 {
		return exploreDFS(ctx, s, m, opts, sc)
	}
	r := newResult(s, m, levels)

	_, splitSpan := obs.StartSpan(ctx, "split")
	items, lvlRows, err := splitWork(s, levels, &ctxCheck{ctx: ctx, every: 64}, sc)
	if err != nil {
		return nil, err
	}
	if splitSpan != nil {
		splitSpan.SetAttr("items", len(items))
		splitSpan.SetAttr("levels", levels)
		splitSpan.End()
	}
	_, span := obs.StartSpan(ctx, "postlude")
	span.SetAttr("workers", workers)
	span.SetAttr("items", len(items))
	// Deal items round-robin so each queue sees a slice of every level —
	// neighbouring chunks of the same hot row land on different workers.
	// Queue structs and their item storage persist in the scratch; only
	// the atomic cursors are rewound.
	for len(sc.queues) < workers {
		sc.queues = append(sc.queues, &stealQueue{})
		sc.qitems = append(sc.qitems, nil)
	}
	queues := sc.queues[:workers]
	for w, q := range queues {
		q.items = sc.qitems[w][:0]
		q.next.Store(0)
	}
	for i, it := range items {
		q := queues[i%workers]
		q.items = append(q.items, it)
	}
	for w, q := range queues {
		sc.qitems[w] = q.items
	}

	// Private per-worker histograms ride one flat pooled buffer: worker w
	// owns rows [w*(levels+1), (w+1)*(levels+1)), each m.maxCard+1 wide.
	histLen := m.maxCard + 1
	private := sc.ints(workers * (levels + 1) * histLen)

	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := private[w*(levels+1)*histLen : (w+1)*(levels+1)*histLen]
			chk := &ctxCheck{ctx: ctx, every: 16}
			// Drain the own queue, then steal: visit every queue starting
			// from our own until all are empty.
			for off := 0; off < workers; off++ {
				q := queues[(w+off)%workers]
				for {
					it, ok := q.pop()
					if !ok {
						break
					}
					if chk.stop() {
						return
					}
					hist := mine[int(it.level)*histLen : (int(it.level)+1)*histLen]
					accumulateRangeHist(hist, it.set, m, int(it.lo), int(it.hi))
				}
			}
			mu.Lock()
			for i := 0; i <= levels; i++ {
				mergeHist(r.Levels[i], mine[i*histLen:(i+1)*histLen])
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	finalize(r)
	// Per-level durations are meaningless across overlapping workers, so
	// the level spans carry rows and refs only (nil timing).
	endPostludeSpan(span, "parallel", r, lvlRows, nil)
	return r, nil
}

// mergeHist adds src into dst.Hist, growing as needed.
func mergeHist(dst *LevelResult, src []int) {
	if len(src) > len(dst.Hist) {
		grown := make([]int, len(src))
		copy(grown, dst.Hist)
		dst.Hist = grown
	}
	for d, c := range src {
		dst.Hist[d] += c
	}
}
