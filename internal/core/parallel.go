package core

import (
	"context"
	"runtime"
	"sync"

	"github.com/example/cachedse/internal/bitset"
	"github.com/example/cachedse/internal/trace"
)

// ExploreParallel is Explore with the postlude fanned out over a worker
// pool. The paper observes that the set formulation "allows for execution
// of the algorithm on a cluster of machines" (§2.4); the same independence
// yields a shared-memory parallelisation here.
//
// The dominant cost is scanning conflict sets: every non-cold occurrence
// of every unique reference is intersected with its row set at every
// level, and occurrences of different references are independent. Workers
// therefore partition the unique-reference space: each worker repeats the
// (cheap) BCAT set splitting but accumulates only the occurrences of its
// own references, and the per-worker histograms merge associatively.
// Results are bit-identical to Explore. workers <= 0 uses GOMAXPROCS.
func ExploreParallel(t *trace.Trace, opts Options, workers int) (*Result, error) {
	return ExploreParallelContext(context.Background(), t, opts, workers)
}

// ExploreParallelContext is ExploreParallel with cancellation: every
// worker checks ctx periodically and the run returns ctx.Err() once it is
// done.
func ExploreParallelContext(ctx context.Context, t *trace.Trace, opts Options, workers int) (*Result, error) {
	s := trace.Strip(t)
	m, err := BuildMRCTContext(ctx, s)
	if err != nil {
		return nil, err
	}
	return ExploreParallelStrippedContext(ctx, s, m, opts, workers)
}

// ExploreParallelStripped is ExploreParallel over pre-built prelude
// structures.
func ExploreParallelStripped(s *trace.Stripped, m *MRCT, opts Options, workers int) (*Result, error) {
	return ExploreParallelStrippedContext(context.Background(), s, m, opts, workers)
}

// ExploreParallelStrippedContext is ExploreParallelStripped with
// cancellation.
func ExploreParallelStrippedContext(ctx context.Context, s *trace.Stripped, m *MRCT, opts Options, workers int) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	levels, err := levelCount(s, opts)
	if err != nil {
		return nil, err
	}
	if workers == 1 || s.NUnique() < 2*workers || levels == 0 {
		return ExploreStrippedContext(ctx, s, m, opts)
	}
	r := &Result{NUnique: s.NUnique(), N: s.N()}
	r.Levels = make([]*LevelResult, levels+1)
	for i := range r.Levels {
		r.Levels[i] = &LevelResult{Depth: 1 << uint(i)}
	}
	zo := s.ZeroOneSets(levels)

	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			private := make([]*LevelResult, levels+1)
			for i := range private {
				private[i] = &LevelResult{Depth: 1 << uint(i)}
			}
			root := bitset.New(s.NUnique())
			for id := 0; id < s.NUnique(); id++ {
				root.Add(id)
			}
			chk := &ctxCheck{ctx: ctx, every: 64}
			var visit func(set *bitset.Set, level int)
			visit = func(set *bitset.Set, level int) {
				if chk.stop() {
					return
				}
				accumulateShard(private[level], set, m, w, workers)
				if level >= levels || set.Count() < 2 {
					return
				}
				left := bitset.New(set.Cap())
				right := bitset.New(set.Cap())
				left.And(set, zo[level].Zero)
				right.And(set, zo[level].One)
				visit(left, level+1)
				visit(right, level+1)
			}
			visit(root, 0)
			mu.Lock()
			for i, p := range private {
				mergeHist(r.Levels[i], p.Hist)
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	finalize(r)
	return r, nil
}

// accumulateShard is accumulate restricted to references owned by worker w
// under a round-robin partition of identifiers.
func accumulateShard(lr *LevelResult, set *bitset.Set, m *MRCT, w, workers int) {
	set.ForEach(func(e int) bool {
		if e%workers != w {
			return true
		}
		for _, o := range m.occ[e] {
			d := 0
			for _, c := range m.sets[o.set] {
				if set.Contains(int(c)) {
					d++
				}
			}
			if d >= len(lr.Hist) {
				grown := make([]int, d+1)
				copy(grown, lr.Hist)
				lr.Hist = grown
			}
			lr.Hist[d] += int(o.count)
		}
		return true
	})
}

// mergeHist adds src into dst.Hist, growing as needed.
func mergeHist(dst *LevelResult, src []int) {
	if len(src) > len(dst.Hist) {
		grown := make([]int, len(src))
		copy(grown, dst.Hist)
		dst.Hist = grown
	}
	for d, c := range src {
		dst.Hist[d] += c
	}
}
