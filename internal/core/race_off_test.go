//go:build !race

package core

// raceEnabled reports whether the race detector instruments this build.
// Allocation-count gates skip under it: instrumentation allocates on its
// own schedule and would make the gate flaky for no signal.
const raceEnabled = false
