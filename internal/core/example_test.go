package core_test

import (
	"context"
	"fmt"

	"github.com/example/cachedse/internal/core"
	"github.com/example/cachedse/internal/trace"
)

// ExampleExplore sizes a cache for a toy trace: two interleaved arrays
// that conflict in small direct-mapped caches.
func ExampleExplore() {
	tr := trace.New(0)
	for i := 0; i < 8; i++ {
		for j := uint32(0); j < 4; j++ {
			tr.Append(trace.Ref{Addr: j, Kind: trace.DataRead})
			tr.Append(trace.Ref{Addr: 16 + j, Kind: trace.DataRead})
		}
	}
	r, err := core.Explore(context.Background(), tr, core.Options{MaxDepth: 8})
	if err != nil {
		panic(err)
	}
	for _, ins := range r.OptimalSet(0) { // zero non-cold misses
		fmt.Printf("%v -> %d misses\n", ins, r.Level(ins.Depth).Misses(ins.Assoc))
	}
	// Output:
	// (D=1,A=8) -> 0 misses
	// (D=2,A=4) -> 0 misses
	// (D=4,A=2) -> 0 misses
	// (D=8,A=2) -> 0 misses
}

// ExampleBuildMRCT shows the conflict sets of a short trace (the paper's
// Table 4 structure).
func ExampleBuildMRCT() {
	tr := trace.FromAddrs(trace.DataRead, []uint32{1, 2, 3, 1})
	s := trace.Strip(tr)
	m := core.BuildMRCT(s)
	// Reference 1 (id 0) re-occurs once, having seen ids 1 and 2 (i.e.
	// addresses 2 and 3) in between.
	fmt.Println(m.ConflictSets(0))
	// Output:
	// [[1 2]]
}

// ExampleResult_ParetoSet shows the designer-facing frontier.
func ExampleResult_ParetoSet() {
	tr := trace.FromAddrs(trace.DataRead, []uint32{0, 4, 0, 4, 0, 4, 0, 4})
	r, err := core.Explore(context.Background(), tr, core.Options{MaxDepth: 8})
	if err != nil {
		panic(err)
	}
	for _, ins := range r.ParetoSet(0) {
		fmt.Printf("%v size=%d words\n", ins, ins.SizeWords())
	}
	// Output:
	// (D=1,A=2) size=2 words
}
