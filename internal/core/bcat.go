package core

import (
	"github.com/example/cachedse/internal/bitset"
	"github.com/example/cachedse/internal/trace"
)

// BCATNode is a node of the materialised Binary Cache Allocation Tree.
// Following Algorithm 1, a node holds a *pair* of reference sets (Zero,
// One): the two cache rows obtained by splitting the parent row on the next
// index bit. The root pair splits the full unique-reference set on bit B0
// and thus describes the two rows of a depth-2 cache; a pair at tree depth
// l describes two rows of a depth-2^(l+1) cache.
type BCATNode struct {
	Zero, One *bitset.Set
	// Left is the pair splitting Zero on the next bit (nil when |Zero| < 2,
	// the paper's stop criterion); Right likewise splits One.
	Left, Right *BCATNode
}

// BCAT is the materialised tree plus bookkeeping.
type BCAT struct {
	// Root is nil when the trace has fewer than two unique references (no
	// split is possible or needed).
	Root *BCATNode
	// Levels is the number of index-bit levels the tree can describe: row
	// sets exist for depths 2^1 .. 2^Levels.
	Levels int
	// NUnique is N', the universe size of every set in the tree.
	NUnique int
}

// BuildBCAT constructs the tree of Algorithm 1 from a stripped trace.
// levels limits the tree to the given number of index bits; levels <= 0
// uses the trace's significant address bits. The tree is caller-owned and
// stays valid indefinitely; the engine's internal path goes through
// buildBCATAlloc with a pooled set allocator instead.
func BuildBCAT(s *trace.Stripped, levels int) *BCAT {
	return buildBCATAlloc(s, levels, bitset.New)
}

// buildBCATAlloc is BuildBCAT with the bit-vector allocator injected:
// every set in the tree — the zero/one planes included — comes from
// newSet, so a freelist-backed allocator recycles the whole table across
// explorations. The tree then lives only as long as the allocator's
// storage does.
func buildBCATAlloc(s *trace.Stripped, levels int, newSet func(n int) *bitset.Set) *BCAT {
	if levels <= 0 {
		levels = s.AddrBits()
	}
	t := &BCAT{Levels: levels, NUnique: s.NUnique()}
	if s.NUnique() < 2 || levels == 0 {
		// Degenerate: with fewer than two unique references every row set
		// is trivially conflict-free; the tree has nothing to say.
		if levels > 0 && s.NUnique() >= 1 {
			zo := s.ZeroOneSetsAlloc(1, newSet)
			t.Root = &BCATNode{Zero: zo[0].Zero, One: zo[0].One}
		}
		return t
	}
	zo := s.ZeroOneSetsAlloc(levels, newSet)
	t.Root = &BCATNode{Zero: zo[0].Zero, One: zo[0].One}
	buildTree(t.Root, 1, zo, newSet)
	return t
}

// buildTree is the recursive body of Algorithm 1: split each child set of
// cardinality >= 2 on the next index bit.
func buildTree(n *BCATNode, l int, zo []trace.ZeroOne, newSet func(n int) *bitset.Set) {
	if l >= len(zo) {
		return
	}
	nu := n.Zero.Cap()
	if n.Zero.Count() >= 2 {
		left := &BCATNode{Zero: newSet(nu), One: newSet(nu)}
		left.Zero.And(n.Zero, zo[l].Zero)
		left.One.And(n.Zero, zo[l].One)
		n.Left = left
		buildTree(left, l+1, zo, newSet)
	}
	if n.One.Count() >= 2 {
		right := &BCATNode{Zero: newSet(nu), One: newSet(nu)}
		right.Zero.And(n.One, zo[l].Zero)
		right.One.And(n.One, zo[l].One)
		n.Right = right
		buildTree(right, l+1, zo, newSet)
	}
}

// LevelSets returns the row sets the tree records for a cache of depth 2^l
// (l >= 1), left to right, exactly as Figure 3 draws them: for each pair
// node at tree depth l-1 its Zero set then its One set. Rows whose parent
// set had cardinality < 2 are pruned by Algorithm 1 and are not returned;
// they can never conflict, so they contribute no misses at any deeper
// level.
func (t *BCAT) LevelSets(l int) []*bitset.Set {
	if t.Root == nil || l < 1 || l > t.Levels {
		return nil
	}
	var out []*bitset.Set
	var walk func(n *BCATNode, depth int)
	walk = func(n *BCATNode, depth int) {
		if n == nil {
			return
		}
		if depth == l-1 {
			out = append(out, n.Zero, n.One)
			return
		}
		walk(n.Left, depth+1)
		walk(n.Right, depth+1)
	}
	walk(t.Root, 0)
	return out
}

// NodeCount returns the number of pair nodes in the tree, for space
// accounting in the materialised-vs-DFS ablation.
func (t *BCAT) NodeCount() int {
	var count func(n *BCATNode) int
	count = func(n *BCATNode) int {
		if n == nil {
			return 0
		}
		return 1 + count(n.Left) + count(n.Right)
	}
	return count(t.Root)
}
