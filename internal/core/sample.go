package core

import (
	"context"
	"fmt"
	"math"

	"github.com/example/cachedse/internal/faultinject"
	"github.com/example/cachedse/internal/obs"
	"github.com/example/cachedse/internal/sampling"
	"github.com/example/cachedse/internal/trace"
)

// exploreSampled is the approximate twin of Explore, in one of two modes
// keyed by the source shape:
//
//   - *trace.Trace — postlude sampling (sampling.ModePostlude): the full
//     prelude runs (strip + MRCT over every reference), then the postlude
//     accumulates only the spatially-sampled identifiers' occurrences.
//     Conflict distances are exact; only occurrence mass is rescaled.
//     This is the accurate mode, and since the postlude is the engine's
//     O(N·N') bottleneck it still yields the ~1/R speedup.
//
//   - trace.RefReader — stream thinning (sampling.ModeStream): the
//     filter drops references before the prelude, so memory scales with
//     the sample — the mode for traces too large to materialise. Conflict
//     sets are thinned too; the estimator stretches distances back and
//     deconvolves small cardinalities, trading accuracy for the memory
//     bound.
//
// A Prelude source is rejected: it is already stripped, and sampling
// after stripping would destroy the occurrence counts the estimator
// calibrates against.
func exploreSampled(ctx context.Context, src Source, opts Options) (*Result, error) {
	cfg := sampling.Config{Rate: opts.SampleRate, Seed: opts.SampleSeed, MinUnique: opts.SampleFloor}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := faultinject.Hit("core.sample"); err != nil {
		return nil, err
	}
	sc := sharedScratch.Get(scratchHint(src))
	defer sharedScratch.Put(sc)
	switch v := src.(type) {
	case *trace.Trace:
		if v == nil {
			return nil, fmt.Errorf("core: Explore given a nil *trace.Trace")
		}
		return explorePostludeSampled(ctx, v, cfg, opts, sc)
	case trace.RefReader:
		if v == nil {
			return nil, fmt.Errorf("core: Explore given a nil trace.RefReader")
		}
		return exploreStreamSampled(ctx, v, cfg, opts, sc)
	case Prelude:
		return nil, fmt.Errorf("core: sampled exploration needs a raw reference source, not a pre-built Prelude")
	case nil:
		return nil, fmt.Errorf("core: Explore given a nil Source")
	default:
		return nil, fmt.Errorf("core: unsupported Source type %T for sampled exploration (want *trace.Trace or trace.RefReader)", src)
	}
}

// explorePostludeSampled runs the exact prelude and a spatially-sampled
// postlude (sampling.ModePostlude), stratified so that heavy addresses —
// whose all-or-nothing inclusion would dominate the estimator's variance
// — are certainty units while the flat remainder is hash-sampled.
func explorePostludeSampled(ctx context.Context, tr *trace.Trace, cfg sampling.Config, opts Options, sc *Scratch) (*Result, error) {
	s := stripWithSpan(ctx, tr, sc)
	eff := cfg.EffectiveRate(s.NUnique())
	seed := cfg.SeedValue()

	// Per-identifier non-cold occurrence masses drive the stratum plan.
	cnt := make([]int, s.NUnique())
	for _, id := range s.IDs {
		cnt[id]++
	}
	mass := make([]int, len(cnt))
	for id, c := range cnt {
		mass[id] = c - 1
	}

	est := &sampling.Estimate{
		RequestedRate: cfg.Rate,
		EffectiveRate: eff,
		Seed:          seed,
		KnownUnique:   s.NUnique(),
	}

	if eff >= 1 {
		// Degenerate exact run: the full postlude, with the estimate
		// attached so callers still see rate/CI metadata (all zero-width).
		_, m, err := buildPreludeMRCT(ctx, s, sc)
		if err != nil {
			return nil, err
		}
		res, err := runPostlude(ctx, s, m, opts, sc)
		if err != nil {
			return nil, err
		}
		est.KeptRefs = int64(s.N())
		est.KeptUnique = s.NUnique()
		est.CertUnique = s.NUnique()
		est.CalibratePostlude(0, 0)
		est.Scale = 1
		est.CertHist = rawHists(res)
		res.Sample = est
		return res, nil
	}

	cert, sampRate := sampling.PlanStrata(mass, eff*float64(s.NUnique()))
	threshold := sampling.Threshold(sampRate)
	keepSamp := make([]bool, s.NUnique())
	certUnique, keptUnique := 0, 0
	var keptRefs int64
	for id := range keepSamp {
		switch {
		case cert[id]:
			certUnique++
			keptUnique++
			keptRefs += int64(cnt[id])
		case sampRate > 0 && sampling.Keep(s.Addr(id), seed, threshold):
			keepSamp[id] = true
			keptUnique++
			keptRefs += int64(cnt[id])
		}
	}
	est.KeptRefs = keptRefs
	est.DroppedRefs = int64(s.N()) - keptRefs
	est.KeptUnique = keptUnique
	est.CertUnique = certUnique

	_, span := obs.StartSpan(ctx, "sample")
	if span != nil {
		span.SetAttr("mode", sampling.ModePostlude)
		span.SetAttr("requested_rate", cfg.Rate)
		span.SetAttr("effective_rate", eff)
		span.SetAttr("sampled_rate", sampRate)
		span.SetAttr("kept", keptRefs)
		span.SetAttr("dropped", int64(s.N())-keptRefs)
		span.SetAttr("kept_unique", keptUnique)
		span.SetAttr("cert_unique", certUnique)
		span.End()
	}

	_, m, err := buildPreludeMRCT(ctx, s, sc)
	if err != nil {
		return nil, err
	}

	var certMass, sampMass int
	levels := 0
	if certUnique > 0 {
		view, cm := m.FilterOcc(cert)
		certRes, err := runPostlude(ctx, s, view, opts, sc)
		if err != nil {
			return nil, err
		}
		certMass = cm
		est.CertHist = rawHists(certRes)
		levels = len(certRes.Levels)
	}
	{
		view, sm := m.FilterOcc(keepSamp)
		sampRes, err := runPostlude(ctx, s, view, opts, sc)
		if err != nil {
			return nil, err
		}
		sampMass = sm
		est.RawHist = rawHists(sampRes)
		if len(sampRes.Levels) > levels {
			levels = len(sampRes.Levels)
		}
	}
	est.CalibratePostlude(certMass, sampMass)

	r := &Result{
		Levels:  make([]*LevelResult, levels),
		N:       s.N(),
		NUnique: s.NUnique(),
		Sample:  est,
	}
	for i := range r.Levels {
		r.Levels[i] = &LevelResult{Depth: 1 << uint(i), Hist: roundHist(est.RescaleLevel(i))}
	}
	finalize(r)
	return r, nil
}

// exploreStreamSampled thins the reference stream before the prelude
// (sampling.ModeStream).
func exploreStreamSampled(ctx context.Context, rr trace.RefReader, cfg sampling.Config, opts Options, sc *Scratch) (*Result, error) {
	// A blind stream's unique count is unknown up front, so the MinUnique
	// floor cannot engage and the requested rate is used as-is.
	eff := cfg.EffectiveRate(0)
	filter := sampling.NewFilter(rr, eff, cfg.SeedValue())

	// The sample span wraps the filtered strip: filtering happens lazily
	// as the strip pass pulls references through, so kept/dropped totals
	// are only final once the strip completes.
	_, span := obs.StartSpan(ctx, "sample")
	s, err := stripReaderWithSpan(ctx, filter, sc)
	if span != nil {
		span.SetAttr("mode", sampling.ModeStream)
		span.SetAttr("requested_rate", cfg.Rate)
		span.SetAttr("effective_rate", eff)
		span.SetAttr("kept", filter.Kept())
		span.SetAttr("dropped", filter.Dropped())
		span.End()
	}
	if err != nil {
		return nil, err
	}

	_, m, err := buildPreludeMRCT(ctx, s, sc)
	if err != nil {
		return nil, err
	}
	sampled, err := runPostlude(ctx, s, m, opts, sc)
	if err != nil {
		return nil, err
	}

	est := &sampling.Estimate{
		RequestedRate: cfg.Rate,
		EffectiveRate: eff,
		Seed:          cfg.SeedValue(),
		KeptRefs:      filter.Kept(),
		DroppedRefs:   filter.Dropped(),
	}
	est.Calibrate(sampled.N, sampled.NUnique)
	return rescaleStream(sampled, est, fullLevelCount(filter.AddrBits(), opts)), nil
}

// fullLevelCount mirrors levelCount but over the full stream's address
// bits (which the filter observed, kept or dropped) instead of the
// sampled strip's: the estimate must cover the same depth range the exact
// engine would have explored, even if sampling dropped the
// highest-addressed block.
func fullLevelCount(addrBits int, opts Options) int {
	levels := addrBits
	if opts.MaxDepth != 0 {
		cap := 0
		for d := opts.MaxDepth; d > 1; d >>= 1 {
			cap++
		}
		if cap < levels {
			levels = cap
		}
	}
	return levels
}

// rescaleStream maps a stream-sampled Result to full-trace magnitude:
// every histogram is rescaled through the estimator (stretch +
// deconvolution/occupancy correction), levels the sampled trace was too
// small to reach are padded with zero-conflict profiles, and N/NUnique
// are restored to (or estimated at) their full-trace values. When the
// rate degenerated to 1 the sampled result is already exact and passes
// through untouched — the bit-identity the R=1 property test pins.
func rescaleStream(sampled *Result, est *sampling.Estimate, fullLevels int) *Result {
	est.RawHist = rawHists(sampled)

	if est.Exact() {
		sampled.Sample = est
		return sampled
	}

	levels := len(sampled.Levels)
	if fullLevels+1 > levels {
		levels = fullLevels + 1
	}
	r := &Result{
		Levels: make([]*LevelResult, levels),
		N:      int(est.KeptRefs + est.DroppedRefs),
		Sample: est,
	}
	if est.KnownUnique > 0 {
		r.NUnique = est.KnownUnique
	} else {
		r.NUnique = int(math.Round(float64(est.KeptUnique) * est.Stretch))
	}
	for i := range r.Levels {
		var hist []int
		if i < len(sampled.Levels) {
			hist = roundHist(est.RescaleHist(sampled.Levels[i].Hist))
		}
		r.Levels[i] = &LevelResult{Depth: 1 << uint(i), Hist: hist}
	}
	finalize(r)
	return r
}

// rawHists snapshots a result's per-level histograms for the estimate.
func rawHists(r *Result) [][]int {
	out := make([][]int, len(r.Levels))
	for i, l := range r.Levels {
		out[i] = append([]int(nil), l.Hist...)
	}
	return out
}

func roundHist(f []float64) []int {
	h := make([]int, len(f))
	for d, v := range f {
		h[d] = int(math.Round(v))
	}
	return h
}
