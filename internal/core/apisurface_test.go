package core

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"sort"
	"strings"
	"testing"
)

// TestAPISurfaceOneExploreEntryPoint parses the package source and
// enforces the finalized v2 contract: exactly one exported Explore entry
// point exists (core.Explore) and no Deprecated: Explore shims remain —
// the PR-5 compatibility wrappers were deleted once every caller had
// migrated to Explore(ctx, src, opts). This is the apidiff gate: adding a
// second entry point, or reintroducing a shim, fails here before review.
func TestAPISurfaceOneExploreEntryPoint(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["core"]
	if !ok {
		t.Fatalf("package core not found in %v", pkgs)
	}

	var live, deprecated []string
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv != nil || !fn.Name.IsExported() {
				continue
			}
			name := fn.Name.Name
			if !strings.HasPrefix(name, "Explore") {
				continue
			}
			if isDeprecated(fn.Doc) {
				deprecated = append(deprecated, name)
			} else {
				live = append(live, name)
			}
		}
	}
	sort.Strings(live)
	sort.Strings(deprecated)

	if len(live) != 1 || live[0] != "Explore" {
		t.Fatalf("non-deprecated Explore entry points = %v, want exactly [Explore]", live)
	}
	if len(deprecated) != 0 {
		t.Fatalf("Deprecated: Explore shims = %v, want none (the v2 surface has a single entry point; new options go on core.Options, not on new wrappers)", deprecated)
	}
}

func isDeprecated(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.Contains(c.Text, "Deprecated:") {
			return true
		}
	}
	return false
}
