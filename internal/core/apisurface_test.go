package core

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"sort"
	"strings"
	"testing"
)

// TestAPISurfaceOneExploreEntryPoint parses the package source and
// enforces the unified-API contract: exactly one exported, non-deprecated
// Explore entry point exists (core.Explore); every other Explore* export
// carries a "Deprecated:" doc marker pointing callers at it. This is the
// apidiff gate for the refactor — adding a second live entry point, or
// silently un-deprecating a legacy wrapper, fails here before review.
func TestAPISurfaceOneExploreEntryPoint(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["core"]
	if !ok {
		t.Fatalf("package core not found in %v", pkgs)
	}

	var live, deprecated []string
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv != nil || !fn.Name.IsExported() {
				continue
			}
			name := fn.Name.Name
			if !strings.HasPrefix(name, "Explore") {
				continue
			}
			if isDeprecated(fn.Doc) {
				deprecated = append(deprecated, name)
			} else {
				live = append(live, name)
			}
		}
	}
	sort.Strings(live)
	sort.Strings(deprecated)

	if len(live) != 1 || live[0] != "Explore" {
		t.Fatalf("non-deprecated Explore entry points = %v, want exactly [Explore]", live)
	}
	wantDeprecated := []string{
		"ExploreBCAT", "ExploreContext", "ExploreLineSizes", "ExploreParallel",
		"ExploreParallelContext", "ExploreParallelStripped",
		"ExploreParallelStrippedContext", "ExploreReader", "ExploreReaderContext",
		"ExploreStripped", "ExploreStrippedContext",
	}
	if strings.Join(deprecated, ",") != strings.Join(wantDeprecated, ",") {
		t.Fatalf("deprecated wrappers changed:\ngot  %v\nwant %v\n(removing one breaks source compatibility; adding one needs a Deprecated: marker and a row here)", deprecated, wantDeprecated)
	}
}

func isDeprecated(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.Contains(c.Text, "Deprecated:") {
			return true
		}
	}
	return false
}
