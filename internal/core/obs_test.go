package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"github.com/example/cachedse/internal/obs"
	"github.com/example/cachedse/internal/obs/profiler"
	"github.com/example/cachedse/internal/paperex"
	"github.com/example/cachedse/internal/trace"
)

// obsTestTrace builds a conflict-heavy random trace for span assertions.
func obsTestTrace(n int, space uint32) *trace.Trace {
	rng := rand.New(rand.NewSource(7))
	tr := trace.New(n)
	for i := 0; i < n; i++ {
		tr.Append(trace.Ref{Addr: rng.Uint32() % space, Kind: trace.DataRead})
	}
	return tr
}

// spansByName indexes an exported trace for lookup assertions.
func spansByName(tr obs.Trace) map[string][]obs.SpanRecord {
	m := make(map[string][]obs.SpanRecord)
	for _, s := range tr.Spans {
		m[s.Name] = append(m[s.Name], s)
	}
	return m
}

// TestExploreContextRecordsPhaseSpans locks the engine's phase hook
// contract: one strip, one mrct and one postlude span per run, the mrct
// span carrying the dedup telemetry and the postlude span one aggregate
// "level" child per cache level whose refs equal the non-cold occurrence
// count (every occurrence lands in exactly one row set per level).
func TestExploreContextRecordsPhaseSpans(t *testing.T) {
	tr := obsTestTrace(4_000, 1<<7)
	rec := obs.NewRecorder(0)
	ctx := obs.WithRecorder(context.Background(), rec)
	r, err := Explore(ctx, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	byName := spansByName(rec.Export())
	for _, want := range []string{"strip", "mrct", "postlude"} {
		if len(byName[want]) != 1 {
			t.Fatalf("%d %q spans, want 1 (have %v)", len(byName[want]), want, byName)
		}
	}
	s := trace.Strip(tr)
	m := BuildMRCT(s)

	mrctAttrs := byName["mrct"][0].Attrs
	if got := mrctAttrs["n"]; got != s.N() {
		t.Errorf("mrct span n = %v, want %d", got, s.N())
	}
	if got := mrctAttrs["n_unique"]; got != s.NUnique() {
		t.Errorf("mrct span n_unique = %v, want %d", got, s.NUnique())
	}
	if got := mrctAttrs["dedup_hit_rate"]; got != m.DedupHitRate() {
		t.Errorf("mrct span dedup_hit_rate = %v, want %v", got, m.DedupHitRate())
	}
	if got := mrctAttrs["occurrences"]; got != m.Occurrences() {
		t.Errorf("mrct span occurrences = %v, want %d", got, m.Occurrences())
	}

	post := byName["postlude"][0]
	if got := post.Attrs["algorithm"]; got != "dfs" {
		t.Errorf("postlude algorithm = %v, want dfs", got)
	}
	levels := byName["level"]
	if len(levels) != len(r.Levels) {
		t.Fatalf("%d level spans, want %d", len(levels), len(r.Levels))
	}
	occ := m.Occurrences()
	for _, lv := range levels {
		if lv.Parent != post.ID {
			t.Errorf("level span parented to %d, want postlude %d", lv.Parent, post.ID)
		}
		if got := lv.Attrs["refs"]; got != occ {
			t.Errorf("level %v refs = %v, want %d", lv.Attrs["depth"], got, occ)
		}
		if agg, _ := lv.Attrs["aggregate"].(bool); !agg {
			t.Errorf("level span not marked aggregate: %v", lv.Attrs)
		}
	}
}

// TestExploreParallelContextRecordsSplitSpan checks the parallel path's
// phase taxonomy: a split span (the BCAT walk) ahead of the postlude, and
// level children carrying row counts but no per-level timing.
func TestExploreParallelContextRecordsSplitSpan(t *testing.T) {
	raiseGOMAXPROCS(t, 4)
	tr := obsTestTrace(4_000, 1<<7)
	rec := obs.NewRecorder(0)
	ctx := obs.WithRecorder(context.Background(), rec)
	if _, err := Explore(ctx, tr, Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	byName := spansByName(rec.Export())
	for _, want := range []string{"strip", "mrct", "split", "postlude"} {
		if len(byName[want]) != 1 {
			t.Fatalf("%d %q spans, want 1", len(byName[want]), want)
		}
	}
	if got := byName["postlude"][0].Attrs["algorithm"]; got != "parallel" {
		t.Errorf("postlude algorithm = %v, want parallel", got)
	}
	for _, lv := range byName["level"] {
		if _, ok := lv.Attrs["rows"]; !ok {
			t.Errorf("parallel level span missing rows attr: %v", lv.Attrs)
		}
		if _, ok := lv.Attrs["refs_per_sec"]; ok {
			t.Errorf("parallel level span carries refs_per_sec, but per-level timing is undefined across workers")
		}
	}
}

// TestExploreSameResultWithRecorder guards against instrumentation ever
// perturbing the answer: the histograms must be bit-identical with and
// without a recorder installed, sequential and parallel.
func TestExploreSameResultWithRecorder(t *testing.T) {
	tr := paperex.Trace()
	plain, err := Explore(context.Background(), tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := obs.WithRecorder(context.Background(), obs.NewRecorder(0))
	traced, err := Explore(ctx, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !resultsIdentical(plain, traced) {
		t.Fatal("recorded sequential exploration differs from plain run")
	}
	tracedPar, err := Explore(ctx, tr, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !resultsIdentical(plain, tracedPar) {
		t.Fatal("recorded parallel exploration differs from plain run")
	}
}

// BenchmarkExploreObs measures the phase-hook overhead on the full
// exploration: "off" runs with no recorder on the context (the production
// default — every StartSpan is one context lookup returning nil), "on"
// records the full span tree. The acceptance bar is "off" within 2% of
// the pre-instrumentation baseline; compare BENCH_core.json snapshots.
func BenchmarkExploreObs(b *testing.B) {
	tr := obsTestTrace(20_000, 1<<9)
	s := trace.Strip(tr)
	m := BuildMRCT(s)
	b.Run("off", func(b *testing.B) {
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Explore(ctx, Prelude{Stripped: s, MRCT: m}, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctx := obs.WithRecorder(context.Background(), obs.NewRecorder(0))
			if _, err := Explore(ctx, Prelude{Stripped: s, MRCT: m}, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	// "on+profiler" adds the continuous profiler on top of full span
	// recording — the worst-case production configuration. The interval
	// is compressed so captures actually overlap the measurement window,
	// but the duty cycle (CPU sampling ~8% of the time) matches the
	// production default of 5s every 60s; per-capture fixed costs are
	// therefore overstated here relative to a real 60s interval. The
	// acceptance bar is within 2% of "off".
	b.Run("on+profiler", func(b *testing.B) {
		p, err := profiler.New(profiler.Config{
			Dir:         b.TempDir(),
			Interval:    1 * time.Second,
			CPUDuration: 80 * time.Millisecond,
			MaxPerKind:  4,
		})
		if err != nil {
			b.Fatal(err)
		}
		p.Start()
		defer p.Stop()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctx := obs.WithRecorder(context.Background(), obs.NewRecorder(0))
			if _, err := Explore(ctx, Prelude{Stripped: s, MRCT: m}, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
