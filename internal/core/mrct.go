package core

import (
	"context"
	"slices"

	"github.com/example/cachedse/internal/bitset"
	"github.com/example/cachedse/internal/obs"
	"github.com/example/cachedse/internal/trace"
)

// MRCT is the Memory Reference Conflict Table (Algorithm 2, Table 4): for
// every unique reference, one conflict set per non-cold occurrence holding
// the identifiers of the distinct references touched since the previous
// occurrence.
//
// Conflict sets are deduplicated globally with multiplicities —
// loop-dominated embedded traces repeat a handful of conflict windows
// millions of times, and the postlude phase only needs |S ∩ C| per
// *distinct* C weighted by its count — and stored in a hybrid
// representation: small sets as sorted identifier slices (carved out of a
// shared arena), sets dense relative to the identifier universe
// additionally as packed bit vectors so the postlude can intersect them
// word-wise with AND+popcount. This keeps the structure within the paper's
// stated O(trace) space in practice.
type MRCT struct {
	nunique int
	// sets is the global table of distinct conflict sets, each sorted
	// ascending by identifier. The slices alias shared arena blocks.
	sets [][]int32
	// packed[i] is the bit-vector form of sets[i] when it is dense enough
	// for the word-wise kernel to win, nil otherwise.
	packed []*bitset.Set
	// maxCard is the largest conflict-set cardinality, bounding every
	// |S ∩ C| the postlude can produce.
	maxCard int
	// occ[id] lists, per distinct conflict set of id, the pair (index into
	// sets, number of occurrences with exactly that window).
	occ [][]occurrence
}

type occurrence struct {
	set   int32
	count int32
}

// NUnique returns N', the identifier universe size.
func (m *MRCT) NUnique() int { return m.nunique }

// DistinctSets returns the size of the global deduplicated set table.
func (m *MRCT) DistinctSets() int { return len(m.sets) }

// MaxConflictCard returns the largest conflict-set cardinality in the
// table. Every postlude histogram index |S ∩ C| is at most this, so
// callers can size histograms once instead of growing them in the inner
// loop.
func (m *MRCT) MaxConflictCard() int { return m.maxCard }

// PackedSets returns how many distinct sets also carry a packed bit-vector
// form, for space accounting and tests.
func (m *MRCT) PackedSets() int {
	n := 0
	for _, p := range m.packed {
		if p != nil {
			n++
		}
	}
	return n
}

// Occurrences returns the total number of non-cold occurrences recorded,
// which equals N − N'.
func (m *MRCT) Occurrences() int {
	total := 0
	for _, os := range m.occ {
		for _, o := range os {
			total += int(o.count)
		}
	}
	return total
}

// ConflictSets expands the table for identifier id into one sorted slice
// per non-cold occurrence (multiplicities unrolled). Intended for tests and
// table rendering; the postlude phase iterates the compressed form.
func (m *MRCT) ConflictSets(id int) [][]int32 {
	var out [][]int32
	for _, o := range m.occ[id] {
		for i := int32(0); i < o.count; i++ {
			out = append(out, m.sets[o.set])
		}
	}
	return out
}

// FilterOcc returns a view of the table that accumulates only the kept
// identifiers' occurrences: the conflict sets, packed vectors and
// cardinality bound are shared (intersections stay exact against the
// full universe), while occ is emptied for dropped identifiers. The
// sampled postlude runs over the view with every engine unchanged — it
// simply skips the dropped identifiers' occurrences — which is what
// makes the spatially-sampled estimator's conflict distances exact
// rather than thinned. The second return is the kept non-cold
// occurrence mass, the denominator of the estimator's mass scale.
func (m *MRCT) FilterOcc(keep []bool) (*MRCT, int) {
	out := &MRCT{
		nunique: m.nunique,
		sets:    m.sets,
		packed:  m.packed,
		maxCard: m.maxCard,
		occ:     make([][]occurrence, len(m.occ)),
	}
	mass := 0
	for id, os := range m.occ {
		if id < len(keep) && keep[id] {
			out.occ[id] = os
			for _, o := range os {
				mass += int(o.count)
			}
		}
	}
	return out, mass
}

// hashID mixes one identifier into a well-distributed 64-bit value
// (splitmix64 finalizer). Conflict-set hashes combine these commutatively
// so the dedup key never needs the set sorted.
func hashID(v uint64) uint64 {
	v += 0x9e3779b97f4a7c15
	v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
	v = (v ^ (v >> 27)) * 0x94d049bb133111eb
	return v ^ (v >> 31)
}

// packThreshold converts the universe size into the sparse-set length
// above which the packed word-wise kernel wins: a packed intersection
// touches every word of the universe once, a sparse intersection touches
// one word per element, and BenchmarkMicroIntersect measures the two
// per-step costs as near-equal — so the break-even sits at one element
// per word.
func packThreshold(nunique int) int {
	words := (nunique + 63) / 64
	if words < 8 {
		return 8
	}
	return words
}

// BuildMRCT builds the conflict table in a single pass using a global LRU
// stack, the hash-table formulation §2.4 recommends over the literal double
// loop of Algorithm 2. When reference u is re-accessed at stack position p,
// the identifiers above it (positions 0..p-1) are exactly the distinct
// references touched since u's previous occurrence — the conflict set.
func BuildMRCT(s *trace.Stripped) *MRCT {
	m, _ := BuildMRCTContext(context.Background(), s)
	return m
}

// BuildMRCTContext is BuildMRCT with cancellation: the single pass over
// the trace checks ctx every few thousand references and returns ctx.Err()
// once it is done.
//
// The returned table is caller-owned: it is built through a throwaway
// scratch, so it stays valid indefinitely (a Prelude can retain it across
// explorations). The engine's internal path instead reuses a pooled
// scratch via buildMRCT, whose output lives only until the scratch is
// recycled.
func BuildMRCTContext(ctx context.Context, s *trace.Stripped) (*MRCT, error) {
	m := &MRCT{}
	if err := buildMRCT(ctx, s, &Scratch{}, m); err != nil {
		return nil, err
	}
	return m, nil
}

// buildMRCT builds the conflict table into m using sc's reusable buffers.
//
// Deduplication is by commutative 64-bit hash of the (unsorted) stack
// prefix, verified against the stored candidates with an epoch-stamp
// membership check; the full sort of a conflict set happens only when it
// turns out to be a set never seen before. Repeat-dominated traces
// therefore sort each distinct window once instead of once per occurrence.
// Candidates sharing a hash are chained newest-first through dedupNext;
// at most one candidate can pass the stamp check, so chain order cannot
// affect the result.
//
// All of m's storage — sparse sets, packed bit-vectors, occurrence runs —
// is carved from sc's arenas. A pooled caller must treat m as invalidated
// once sc is reused; BuildMRCTContext passes a fresh scratch precisely so
// its output has no such lifetime.
func buildMRCT(ctx context.Context, s *trace.Stripped, sc *Scratch, m *MRCT) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	_, span := obs.StartSpan(ctx, "mrct")
	nu := s.NUnique()
	sc.note(s.N())
	sc.i32.reset()
	sc.bs.Reset()
	m.nunique = nu
	m.maxCard = 0
	m.sets = m.sets[:0]
	m.packed = m.packed[:0]
	if cap(m.occ) < nu {
		m.occ = make([][]occurrence, nu)
	}
	m.occ = m.occ[:nu]
	for i := range m.occ {
		m.occ[i] = nil
	}
	thresh := packThreshold(nu)
	// dedupHead maps the commutative hash to the newest candidate set
	// index; older candidates chain through dedupNext. Genuine collisions
	// are resolved by the stamp check below.
	if sc.dedupHead == nil {
		sc.dedupHead = make(map[uint64]int32)
	} else {
		clear(sc.dedupHead)
	}
	dedupHead := sc.dedupHead
	dedupNext := sc.dedupNext[:0]
	// idHash[v] caches hashID(v) — a pure function of v, so the cache only
	// ever extends; stamp/epoch implement O(|C|) set equality against an
	// unsorted candidate window. The epoch is monotone across builds, so
	// stamps never need clearing between pooled runs.
	for v := len(sc.idHash); v < nu; v++ {
		sc.idHash = append(sc.idHash, hashID(uint64(v)))
	}
	idHash := sc.idHash
	if len(sc.stamp) < nu {
		sc.stamp = append(sc.stamp, make([]uint64, nu-len(sc.stamp))...)
	}
	stamp := sc.stamp
	// pos[id] is id's position in the LRU stack (-1 when cold), so the
	// linear stack search of the old build is gone; move-to-front already
	// shifts the prefix, and the positions update in the same loop.
	if cap(sc.pos) < nu {
		sc.pos = make([]int32, nu)
	}
	pos := sc.pos[:nu]
	for i := range pos {
		pos[i] = -1
	}
	// pairs records (id, set index) per non-cold occurrence; one global
	// sort at the end replaces the per-id slices of the old build.
	pairs := sc.pairs[:0]

	stack := sc.stack[:0] // identifiers, most recent first
	for i, id := range s.IDs {
		if i&4095 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		p := pos[id]
		if p < 0 {
			// Cold occurrence: no conflict set recorded (Table 4 ignores
			// the first occurrence).
			stack = append(stack, 0)
			copy(stack[1:], stack)
			for _, v := range stack[1:] {
				pos[v]++
			}
			stack[0] = id
			pos[id] = 0
			continue
		}
		// Conflict set = stack prefix above id. Hash it commutatively and
		// stamp its members in one pass; no sort needed for lookup.
		sc.epoch++
		epoch := sc.epoch
		var hsum, hxor uint64
		for _, v := range stack[:p] {
			h := idHash[v]
			hsum += h
			hxor ^= h
			stamp[v] = epoch
		}
		key := hashID(hsum ^ (hxor << 1) ^ uint64(p))
		idx := int32(-1)
		if head, ok := dedupHead[key]; ok {
			for cand := head; cand >= 0; cand = dedupNext[cand] {
				cs := m.sets[cand]
				if len(cs) != int(p) {
					continue
				}
				match := true
				for _, v := range cs {
					if stamp[v] != epoch {
						match = false
						break
					}
				}
				if match {
					idx = cand
					break
				}
			}
		}
		if idx < 0 {
			// First sighting: sort once, copy into the arena, maybe pack.
			cp := sc.i32.alloc(int(p))
			for k, v := range stack[:p] {
				cp[k] = int32(v)
			}
			slices.Sort(cp)
			idx = int32(len(m.sets))
			m.sets = append(m.sets, cp)
			var pk *bitset.Set
			if len(cp) >= thresh {
				pk = sc.bs.New(nu)
				for _, v := range cp {
					pk.Add(int(v))
				}
			}
			m.packed = append(m.packed, pk)
			if int(p) > m.maxCard {
				m.maxCard = int(p)
			}
			if head, ok := dedupHead[key]; ok {
				dedupNext = append(dedupNext, head)
			} else {
				dedupNext = append(dedupNext, -1)
			}
			dedupHead[key] = idx
		}
		pairs = append(pairs, uint64(id)<<32|uint64(uint32(idx)))
		// Move to front.
		copy(stack[1:p+1], stack[:p])
		for _, v := range stack[1 : p+1] {
			pos[v]++
		}
		stack[0] = id
		pos[id] = 0
	}
	sc.stack = stack[:0]
	sc.dedupNext = dedupNext

	// Sort (id, set) pairs and run-length encode into occurrence runs
	// carved from one exactly-sized buffer — occ[id] order per id is by
	// set index, the same as the old per-id sort produced.
	slices.Sort(pairs)
	runs := 0
	for i := 0; i < len(pairs); {
		j := i
		for j < len(pairs) && pairs[j] == pairs[i] {
			j++
		}
		runs++
		i = j
	}
	occBuf := sc.occBuf[:0]
	if cap(occBuf) < runs {
		// Pre-size before carving: a mid-fill growth would strand the
		// occ[id] slices already handed out on the old backing array.
		occBuf = make([]occurrence, 0, runs)
	}
	for i := 0; i < len(pairs); {
		id := int(pairs[i] >> 32)
		start := len(occBuf)
		for i < len(pairs) && int(pairs[i]>>32) == id {
			j := i
			for j < len(pairs) && pairs[j] == pairs[i] {
				j++
			}
			occBuf = append(occBuf, occurrence{set: int32(uint32(pairs[i])), count: int32(j - i)})
			i = j
		}
		m.occ[id] = occBuf[start:len(occBuf):len(occBuf)]
	}
	sc.occBuf = occBuf
	sc.pairs = pairs[:0]
	if span != nil {
		span.SetAttr("n", s.N())
		span.SetAttr("n_unique", nu)
		span.SetAttr("distinct_sets", len(m.sets))
		span.SetAttr("occurrences", m.Occurrences())
		span.SetAttr("dedup_hit_rate", m.DedupHitRate())
		span.SetAttr("max_card", m.maxCard)
		span.SetAttr("packed_sets", m.PackedSets())
		span.End()
	}
	return nil
}

// DedupHitRate is the fraction of non-cold occurrences whose conflict
// window had already been seen: 1 - distinct/occurrences. Loop-dominated
// traces sit near 1; adversarially random traces near 0.
func (m *MRCT) DedupHitRate() float64 {
	occ := m.Occurrences()
	if occ == 0 {
		return 0
	}
	return 1 - float64(len(m.sets))/float64(occ)
}

// BuildMRCTNaive is the literal double loop of Algorithm 2, with the
// conflict windows accumulated in bit vectors: for every unique reference
// U_i an accumulator S_i collects identifiers until the trace reaches U_i
// again, at which point S_i is emitted and reset. O(N·N') time and only
// suitable for small traces; kept as an executable specification that
// cross-validates BuildMRCT.
func BuildMRCTNaive(s *trace.Stripped) [][][]int32 {
	nu := s.NUnique()
	out := make([][][]int32, nu)
	acc := make([]*bitset.Set, nu)
	started := make([]bool, nu)
	for i := range acc {
		acc[i] = bitset.New(nu)
	}
	for _, id := range s.IDs {
		for i := 0; i < nu; i++ {
			if i == id {
				continue
			}
			if started[i] {
				acc[i].Add(id)
			}
		}
		if started[id] {
			elems := acc[id].Elems()
			set := make([]int32, len(elems))
			for k, e := range elems {
				set[k] = int32(e)
			}
			out[id] = append(out[id], set)
			acc[id].Clear()
		}
		started[id] = true
	}
	return out
}
