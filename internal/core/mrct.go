package core

import (
	"context"
	"sort"

	"github.com/example/cachedse/internal/bitset"
	"github.com/example/cachedse/internal/trace"
)

// MRCT is the Memory Reference Conflict Table (Algorithm 2, Table 4): for
// every unique reference, one conflict set per non-cold occurrence holding
// the identifiers of the distinct references touched since the previous
// occurrence.
//
// Conflict sets are stored sparsely (sorted identifier slices) and
// deduplicated globally with multiplicities: loop-dominated embedded traces
// repeat a handful of conflict windows millions of times, and the postlude
// phase only needs |S ∩ C| per *distinct* C weighted by its count. This
// keeps the structure within the paper's stated O(trace) space in practice.
type MRCT struct {
	nunique int
	// sets is the global table of distinct conflict sets, each sorted
	// ascending by identifier.
	sets [][]int32
	// occ[id] lists, per distinct conflict set of id, the pair (index into
	// sets, number of occurrences with exactly that window).
	occ [][]occurrence
}

type occurrence struct {
	set   int32
	count int32
}

// NUnique returns N', the identifier universe size.
func (m *MRCT) NUnique() int { return m.nunique }

// DistinctSets returns the size of the global deduplicated set table.
func (m *MRCT) DistinctSets() int { return len(m.sets) }

// Occurrences returns the total number of non-cold occurrences recorded,
// which equals N − N'.
func (m *MRCT) Occurrences() int {
	total := 0
	for _, os := range m.occ {
		for _, o := range os {
			total += int(o.count)
		}
	}
	return total
}

// ConflictSets expands the table for identifier id into one sorted slice
// per non-cold occurrence (multiplicities unrolled). Intended for tests and
// table rendering; the postlude phase iterates the compressed form.
func (m *MRCT) ConflictSets(id int) [][]int32 {
	var out [][]int32
	for _, o := range m.occ[id] {
		for i := int32(0); i < o.count; i++ {
			out = append(out, m.sets[o.set])
		}
	}
	return out
}

// BuildMRCT builds the conflict table in a single pass using a global LRU
// stack, the hash-table formulation §2.4 recommends over the literal double
// loop of Algorithm 2. When reference u is re-accessed at stack position p,
// the identifiers above it (positions 0..p-1) are exactly the distinct
// references touched since u's previous occurrence — the conflict set.
func BuildMRCT(s *trace.Stripped) *MRCT {
	m, _ := BuildMRCTContext(context.Background(), s)
	return m
}

// BuildMRCTContext is BuildMRCT with cancellation: the single pass over
// the trace checks ctx every few thousand references and returns ctx.Err()
// once it is done.
func BuildMRCTContext(ctx context.Context, s *trace.Stripped) (*MRCT, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m := &MRCT{
		nunique: s.NUnique(),
		occ:     make([][]occurrence, s.NUnique()),
	}
	dedup := make(map[string]int32)
	// perID collects set indices per id before run-length encoding.
	perID := make([][]int32, s.NUnique())

	stack := make([]int, 0, 1024) // identifiers, most recent first
	scratch := make([]int32, 0, 1024)
	keyBuf := make([]byte, 0, 4096)
	for i, id := range s.IDs {
		if i&4095 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		pos := -1
		for i, v := range stack {
			if v == id {
				pos = i
				break
			}
		}
		if pos < 0 {
			// Cold occurrence: no conflict set recorded (Table 4 ignores
			// the first occurrence).
			stack = append(stack, 0)
			copy(stack[1:], stack)
			stack[0] = id
			continue
		}
		// Conflict set = stack prefix above id, sorted.
		scratch = scratch[:0]
		for _, v := range stack[:pos] {
			scratch = append(scratch, int32(v))
		}
		sort.Slice(scratch, func(i, j int) bool { return scratch[i] < scratch[j] })
		keyBuf = keyBuf[:0]
		for _, v := range scratch {
			keyBuf = append(keyBuf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		idx, ok := dedup[string(keyBuf)]
		if !ok {
			idx = int32(len(m.sets))
			cp := make([]int32, len(scratch))
			copy(cp, scratch)
			m.sets = append(m.sets, cp)
			dedup[string(keyBuf)] = idx
		}
		perID[id] = append(perID[id], idx)
		// Move to front.
		copy(stack[1:pos+1], stack[:pos])
		stack[0] = id
	}

	// Run-length encode per id, preserving nothing about order (the
	// postlude only needs multiplicities).
	for id, idxs := range perID {
		if len(idxs) == 0 {
			m.occ[id] = nil
			continue
		}
		sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
		var occs []occurrence
		for i := 0; i < len(idxs); {
			j := i
			for j < len(idxs) && idxs[j] == idxs[i] {
				j++
			}
			occs = append(occs, occurrence{set: idxs[i], count: int32(j - i)})
			i = j
		}
		m.occ[id] = occs
	}
	return m, nil
}

// BuildMRCTNaive is the literal double loop of Algorithm 2, with the
// conflict windows accumulated in bit vectors: for every unique reference
// U_i an accumulator S_i collects identifiers until the trace reaches U_i
// again, at which point S_i is emitted and reset. O(N·N') time and only
// suitable for small traces; kept as an executable specification that
// cross-validates BuildMRCT.
func BuildMRCTNaive(s *trace.Stripped) [][][]int32 {
	nu := s.NUnique()
	out := make([][][]int32, nu)
	acc := make([]*bitset.Set, nu)
	started := make([]bool, nu)
	for i := range acc {
		acc[i] = bitset.New(nu)
	}
	for _, id := range s.IDs {
		for i := 0; i < nu; i++ {
			if i == id {
				continue
			}
			if started[i] {
				acc[i].Add(id)
			}
		}
		if started[id] {
			elems := acc[id].Elems()
			set := make([]int32, len(elems))
			for k, e := range elems {
				set[k] = int32(e)
			}
			out[id] = append(out[id], set)
			acc[id].Clear()
		}
		started[id] = true
	}
	return out
}
