package core

import (
	"context"
	"slices"

	"github.com/example/cachedse/internal/bitset"
	"github.com/example/cachedse/internal/obs"
	"github.com/example/cachedse/internal/trace"
)

// MRCT is the Memory Reference Conflict Table (Algorithm 2, Table 4): for
// every unique reference, one conflict set per non-cold occurrence holding
// the identifiers of the distinct references touched since the previous
// occurrence.
//
// Conflict sets are deduplicated globally with multiplicities —
// loop-dominated embedded traces repeat a handful of conflict windows
// millions of times, and the postlude phase only needs |S ∩ C| per
// *distinct* C weighted by its count — and stored in a hybrid
// representation: small sets as sorted identifier slices (carved out of a
// shared arena), sets dense relative to the identifier universe
// additionally as packed bit vectors so the postlude can intersect them
// word-wise with AND+popcount. This keeps the structure within the paper's
// stated O(trace) space in practice.
type MRCT struct {
	nunique int
	// sets is the global table of distinct conflict sets, each sorted
	// ascending by identifier. The slices alias shared arena blocks.
	sets [][]int32
	// packed[i] is the bit-vector form of sets[i] when it is dense enough
	// for the word-wise kernel to win, nil otherwise.
	packed []*bitset.Set
	// maxCard is the largest conflict-set cardinality, bounding every
	// |S ∩ C| the postlude can produce.
	maxCard int
	// occ[id] lists, per distinct conflict set of id, the pair (index into
	// sets, number of occurrences with exactly that window).
	occ [][]occurrence
}

type occurrence struct {
	set   int32
	count int32
}

// NUnique returns N', the identifier universe size.
func (m *MRCT) NUnique() int { return m.nunique }

// DistinctSets returns the size of the global deduplicated set table.
func (m *MRCT) DistinctSets() int { return len(m.sets) }

// MaxConflictCard returns the largest conflict-set cardinality in the
// table. Every postlude histogram index |S ∩ C| is at most this, so
// callers can size histograms once instead of growing them in the inner
// loop.
func (m *MRCT) MaxConflictCard() int { return m.maxCard }

// PackedSets returns how many distinct sets also carry a packed bit-vector
// form, for space accounting and tests.
func (m *MRCT) PackedSets() int {
	n := 0
	for _, p := range m.packed {
		if p != nil {
			n++
		}
	}
	return n
}

// Occurrences returns the total number of non-cold occurrences recorded,
// which equals N − N'.
func (m *MRCT) Occurrences() int {
	total := 0
	for _, os := range m.occ {
		for _, o := range os {
			total += int(o.count)
		}
	}
	return total
}

// ConflictSets expands the table for identifier id into one sorted slice
// per non-cold occurrence (multiplicities unrolled). Intended for tests and
// table rendering; the postlude phase iterates the compressed form.
func (m *MRCT) ConflictSets(id int) [][]int32 {
	var out [][]int32
	for _, o := range m.occ[id] {
		for i := int32(0); i < o.count; i++ {
			out = append(out, m.sets[o.set])
		}
	}
	return out
}

// FilterOcc returns a view of the table that accumulates only the kept
// identifiers' occurrences: the conflict sets, packed vectors and
// cardinality bound are shared (intersections stay exact against the
// full universe), while occ is emptied for dropped identifiers. The
// sampled postlude runs over the view with every engine unchanged — it
// simply skips the dropped identifiers' occurrences — which is what
// makes the spatially-sampled estimator's conflict distances exact
// rather than thinned. The second return is the kept non-cold
// occurrence mass, the denominator of the estimator's mass scale.
func (m *MRCT) FilterOcc(keep []bool) (*MRCT, int) {
	out := &MRCT{
		nunique: m.nunique,
		sets:    m.sets,
		packed:  m.packed,
		maxCard: m.maxCard,
		occ:     make([][]occurrence, len(m.occ)),
	}
	mass := 0
	for id, os := range m.occ {
		if id < len(keep) && keep[id] {
			out.occ[id] = os
			for _, o := range os {
				mass += int(o.count)
			}
		}
	}
	return out, mass
}

// hashID mixes one identifier into a well-distributed 64-bit value
// (splitmix64 finalizer). Conflict-set hashes combine these commutatively
// so the dedup key never needs the set sorted.
func hashID(v uint64) uint64 {
	v += 0x9e3779b97f4a7c15
	v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9
	v = (v ^ (v >> 27)) * 0x94d049bb133111eb
	return v ^ (v >> 31)
}

// packThreshold converts the universe size into the sparse-set length
// above which the packed word-wise kernel wins: a packed intersection
// touches every word of the universe once, a sparse intersection touches
// one word per element, and BenchmarkMicroIntersect measures the two
// per-step costs as near-equal — so the break-even sits at one element
// per word.
func packThreshold(nunique int) int {
	words := (nunique + 63) / 64
	if words < 8 {
		return 8
	}
	return words
}

// arenaBlock is the allocation granularity for deduped conflict-set
// storage: one backing slice serves many sets, so the per-set allocation
// in the old build disappears and the sets pack contiguously.
const arenaBlock = 1 << 15

// BuildMRCT builds the conflict table in a single pass using a global LRU
// stack, the hash-table formulation §2.4 recommends over the literal double
// loop of Algorithm 2. When reference u is re-accessed at stack position p,
// the identifiers above it (positions 0..p-1) are exactly the distinct
// references touched since u's previous occurrence — the conflict set.
func BuildMRCT(s *trace.Stripped) *MRCT {
	m, _ := BuildMRCTContext(context.Background(), s)
	return m
}

// BuildMRCTContext is BuildMRCT with cancellation: the single pass over
// the trace checks ctx every few thousand references and returns ctx.Err()
// once it is done.
//
// Deduplication is by commutative 64-bit hash of the (unsorted) stack
// prefix, verified against the stored candidates with an epoch-stamp
// membership check; the full sort of a conflict set happens only when it
// turns out to be a set never seen before. Repeat-dominated traces
// therefore sort each distinct window once instead of once per occurrence.
func BuildMRCTContext(ctx context.Context, s *trace.Stripped) (*MRCT, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, span := obs.StartSpan(ctx, "mrct")
	nu := s.NUnique()
	m := &MRCT{
		nunique: nu,
		occ:     make([][]occurrence, nu),
	}
	thresh := packThreshold(nu)
	// dedup maps the commutative hash to the candidate set indices sharing
	// it; genuine collisions are resolved by the stamp check below.
	dedup := make(map[uint64][]int32)
	// perID collects set indices per id before run-length encoding.
	perID := make([][]int32, nu)
	// idHash[v] caches hashID(v); stamp/epoch implement O(|C|) set
	// equality against an unsorted candidate window.
	idHash := make([]uint64, nu)
	for v := range idHash {
		idHash[v] = hashID(uint64(v))
	}
	stamp := make([]uint64, nu)
	epoch := uint64(0)
	// pos[id] is id's position in the LRU stack (-1 when cold), so the
	// linear stack search of the old build is gone; move-to-front already
	// shifts the prefix, and the positions update in the same loop.
	pos := make([]int32, nu)
	for i := range pos {
		pos[i] = -1
	}
	var arena []int32

	stack := make([]int, 0, 1024) // identifiers, most recent first
	for i, id := range s.IDs {
		if i&4095 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		p := pos[id]
		if p < 0 {
			// Cold occurrence: no conflict set recorded (Table 4 ignores
			// the first occurrence).
			stack = append(stack, 0)
			copy(stack[1:], stack)
			for _, v := range stack[1:] {
				pos[v]++
			}
			stack[0] = id
			pos[id] = 0
			continue
		}
		// Conflict set = stack prefix above id. Hash it commutatively and
		// stamp its members in one pass; no sort needed for lookup.
		epoch++
		var hsum, hxor uint64
		for _, v := range stack[:p] {
			h := idHash[v]
			hsum += h
			hxor ^= h
			stamp[v] = epoch
		}
		key := hashID(hsum ^ (hxor << 1) ^ uint64(p))
		idx := int32(-1)
		for _, cand := range dedup[key] {
			cs := m.sets[cand]
			if len(cs) != int(p) {
				continue
			}
			match := true
			for _, v := range cs {
				if stamp[v] != epoch {
					match = false
					break
				}
			}
			if match {
				idx = cand
				break
			}
		}
		if idx < 0 {
			// First sighting: sort once, copy into the arena, maybe pack.
			if cap(arena)-len(arena) < int(p) {
				size := arenaBlock
				if int(p) > size {
					size = int(p)
				}
				arena = make([]int32, 0, size)
			}
			cp := arena[len(arena) : len(arena)+int(p)]
			arena = arena[:len(arena)+int(p)]
			for k, v := range stack[:p] {
				cp[k] = int32(v)
			}
			slices.Sort(cp)
			idx = int32(len(m.sets))
			m.sets = append(m.sets, cp)
			var pk *bitset.Set
			if len(cp) >= thresh {
				pk = bitset.New(nu)
				for _, v := range cp {
					pk.Add(int(v))
				}
			}
			m.packed = append(m.packed, pk)
			if int(p) > m.maxCard {
				m.maxCard = int(p)
			}
			dedup[key] = append(dedup[key], idx)
		}
		perID[id] = append(perID[id], idx)
		// Move to front.
		copy(stack[1:p+1], stack[:p])
		for _, v := range stack[1 : p+1] {
			pos[v]++
		}
		stack[0] = id
		pos[id] = 0
	}

	// Run-length encode per id, preserving nothing about order (the
	// postlude only needs multiplicities).
	for id, idxs := range perID {
		if len(idxs) == 0 {
			m.occ[id] = nil
			continue
		}
		slices.Sort(idxs)
		var occs []occurrence
		for i := 0; i < len(idxs); {
			j := i
			for j < len(idxs) && idxs[j] == idxs[i] {
				j++
			}
			occs = append(occs, occurrence{set: idxs[i], count: int32(j - i)})
			i = j
		}
		m.occ[id] = occs
	}
	if span != nil {
		span.SetAttr("n", s.N())
		span.SetAttr("n_unique", nu)
		span.SetAttr("distinct_sets", len(m.sets))
		span.SetAttr("occurrences", m.Occurrences())
		span.SetAttr("dedup_hit_rate", m.DedupHitRate())
		span.SetAttr("max_card", m.maxCard)
		span.SetAttr("packed_sets", m.PackedSets())
		span.End()
	}
	return m, nil
}

// DedupHitRate is the fraction of non-cold occurrences whose conflict
// window had already been seen: 1 - distinct/occurrences. Loop-dominated
// traces sit near 1; adversarially random traces near 0.
func (m *MRCT) DedupHitRate() float64 {
	occ := m.Occurrences()
	if occ == 0 {
		return 0
	}
	return 1 - float64(len(m.sets))/float64(occ)
}

// BuildMRCTNaive is the literal double loop of Algorithm 2, with the
// conflict windows accumulated in bit vectors: for every unique reference
// U_i an accumulator S_i collects identifiers until the trace reaches U_i
// again, at which point S_i is emitted and reset. O(N·N') time and only
// suitable for small traces; kept as an executable specification that
// cross-validates BuildMRCT.
func BuildMRCTNaive(s *trace.Stripped) [][][]int32 {
	nu := s.NUnique()
	out := make([][][]int32, nu)
	acc := make([]*bitset.Set, nu)
	started := make([]bool, nu)
	for i := range acc {
		acc[i] = bitset.New(nu)
	}
	for _, id := range s.IDs {
		for i := 0; i < nu; i++ {
			if i == id {
				continue
			}
			if started[i] {
				acc[i].Add(id)
			}
		}
		if started[id] {
			elems := acc[id].Elems()
			set := make([]int32, len(elems))
			for k, e := range elems {
				set[k] = int32(e)
			}
			out[id] = append(out[id], set)
			acc[id].Clear()
		}
		started[id] = true
	}
	return out
}
