package core

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/example/cachedse/internal/trace"
)

// bigTrace builds a trace large enough that a full exploration takes
// meaningfully longer than the cancellation latency.
func bigTrace(n int, addrSpace uint32) *trace.Trace {
	rng := rand.New(rand.NewSource(7))
	t := trace.New(n)
	for i := 0; i < n; i++ {
		t.Append(trace.Ref{Addr: rng.Uint32() % addrSpace, Kind: trace.DataRead})
	}
	return t
}

func TestExploreContextPreCanceled(t *testing.T) {
	tr := trace.FromAddrs(trace.DataRead, []uint32{1, 2, 3, 1, 2, 3})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Explore(ctx, tr, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Explore on cancelled ctx: err = %v, want Canceled", err)
	}
	if _, err := Explore(ctx, tr, Options{Workers: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel Explore on cancelled ctx: err = %v, want Canceled", err)
	}
	s := trace.Strip(tr)
	if _, err := BuildMRCTContext(ctx, s); !errors.Is(err, context.Canceled) {
		t.Fatalf("BuildMRCTContext on cancelled ctx: err = %v, want Canceled", err)
	}
}

// Cancelling mid-run must abandon the exploration promptly with ctx.Err()
// rather than completing it; this is the worker-stops guarantee the HTTP
// service's job cancellation relies on.
func TestExploreContextCancelMidRun(t *testing.T) {
	tr := bigTrace(120_000, 1<<14)
	for name, run := range map[string]func(ctx context.Context) (*Result, error){
		"serial":   func(ctx context.Context) (*Result, error) { return Explore(ctx, tr, Options{}) },
		"parallel": func(ctx context.Context) (*Result, error) { return Explore(ctx, tr, Options{Workers: 4}) },
	} {
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			type out struct {
				r   *Result
				err error
			}
			ch := make(chan out, 1)
			go func() {
				r, err := run(ctx)
				ch <- out{r, err}
			}()
			cancel()
			select {
			case o := <-ch:
				if !errors.Is(o.err, context.Canceled) {
					t.Fatalf("err = %v, want Canceled", o.err)
				}
				if o.r != nil {
					t.Fatalf("cancelled run returned a result")
				}
			case <-time.After(30 * time.Second):
				t.Fatal("cancelled exploration did not return")
			}
		})
	}
}

// The engine must be safe for concurrent use over shared traces and
// shared prelude structures: the serving layer runs many explorations at
// once. Exercised under -race in CI.
func TestExploreConcurrentUse(t *testing.T) {
	tr := bigTrace(4_000, 1<<9)
	want, err := Explore(context.Background(), tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := trace.Strip(tr)
	m := BuildMRCT(s)

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var got *Result
			var err error
			switch g % 4 {
			case 0:
				got, err = Explore(context.Background(), tr, Options{})
			case 1:
				got, err = Explore(context.Background(), tr, Options{Workers: 4})
			case 2:
				got, err = Explore(context.Background(), Prelude{Stripped: s, MRCT: m}, Options{})
			case 3:
				got, err = Explore(context.Background(), Prelude{Stripped: s, MRCT: m}, Options{Workers: 3})
			}
			if err != nil {
				errs <- err
				return
			}
			if !reflect.DeepEqual(got.Levels, want.Levels) {
				errs <- errors.New("concurrent exploration diverged from serial result")
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
