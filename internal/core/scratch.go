package core

import (
	"math/bits"
	"sync"

	"github.com/example/cachedse/internal/bitset"
	"github.com/example/cachedse/internal/trace"
)

// This file holds the engine's pooled scratch: every allocation the
// steady-state explore path used to make per request — the stripped form,
// the MRCT build tables (dedup chains, epoch stamps, LRU positions,
// conflict-set arenas, packed bit-vectors, occurrence storage), the
// postlude's zero/one planes and row sets, and the parallel workers'
// private histograms and queues — lives in a Scratch that a sync.Pool
// recycles across explorations. A warm pool drives the data plane's
// allocs/op to the Result envelope alone (BenchmarkSteadyStateAllocs and
// the alloc-smoke CI gate pin this), which is what keeps GC pause time
// out of the p99 under sustained load.
//
// Ownership contract: everything a Scratch hands out (arena-backed
// conflict sets, freelist bit-vectors, the pooled MRCT) is valid only
// until the Scratch is reused or returned to the pool. Nothing reachable
// from a Result may alias scratch storage — Result histograms are always
// freshly allocated — and the public BuildMRCT/Strip entry points build
// caller-owned structures precisely so a retained Prelude can never be
// corrupted by pool reuse.

// Scratch is the reusable working memory of one exploration. A zero
// Scratch is ready to use; buffers grow on first use and are retained.
// A Scratch must not be shared by two explorations at once.
type Scratch struct {
	// hint tracks the largest trace dimension this scratch has served,
	// sizing the pool class it returns to.
	hint int

	// stripped is the pooled strip output for *trace.Trace and RefReader
	// sources (Prelude sources carry their own caller-owned Stripped).
	stripped trace.Stripped

	// mrct is the pooled conflict table, rebuilt in place per exploration.
	mrct MRCT

	// MRCT build state (see buildMRCT).
	dedupHead map[uint64]int32 // commutative hash -> newest set index
	dedupNext []int32          // per set index, next older candidate or -1
	idHash    []uint64         // hashID cache, extended monotonically
	stamp     []uint64         // epoch stamps for O(|C|) set equality
	epoch     uint64           // monotone across builds: stamps never need zeroing
	pos       []int32          // LRU-stack position per id
	stack     []int            // the LRU stack itself
	pairs     []uint64         // (id<<32 | set index) per non-cold occurrence
	occBuf    []occurrence     // backing storage m.occ[id] slices are carved from
	i32       int32Arena       // sparse conflict-set storage
	bs        bitset.Arena     // packed conflict-set storage

	// Postlude freelist: row sets and zero/one planes, recycled via a
	// cursor (resetSets) instead of being reallocated per engine run.
	sets      []*bitset.Set
	setCursor int
	dfsL      []*bitset.Set // per-level left/right children of the DFS —
	dfsR      []*bitset.Set // one pair per level is live at a time

	// Parallel postlude state.
	histBuf []int         // flat per-worker private histograms
	items   []workItem    // split output
	queues  []*stealQueue // per-worker queues (pointers stable across runs)
	qitems  [][]workItem  // per-queue item storage
}

// note records a trace dimension for pool classing.
func (sc *Scratch) note(n int) {
	if n > sc.hint {
		sc.hint = n
	}
}

// resetSets rewinds the bit-vector freelist; every set previously handed
// out by newSet is up for reuse.
func (sc *Scratch) resetSets() { sc.setCursor = 0 }

// newSet returns an empty set of capacity n from the freelist, growing it
// when exhausted. Signature matches trace.ZeroOneSetsAlloc's allocator.
func (sc *Scratch) newSet(n int) *bitset.Set {
	if sc.setCursor < len(sc.sets) {
		s := sc.sets[sc.setCursor]
		sc.setCursor++
		s.Reset(n)
		return s
	}
	s := bitset.New(n)
	sc.sets = append(sc.sets, s)
	sc.setCursor++
	return s
}

// dfsPairs returns the per-level (left, right) child-set slots for a DFS
// over the given number of levels, entries nil until first use.
func (sc *Scratch) dfsPairs(n int) (l, r []*bitset.Set) {
	if cap(sc.dfsL) < n {
		sc.dfsL = make([]*bitset.Set, n)
		sc.dfsR = make([]*bitset.Set, n)
	}
	l, r = sc.dfsL[:n], sc.dfsR[:n]
	for i := range l {
		l[i], r[i] = nil, nil
	}
	return l, r
}

// ints returns a zeroed int slice of length n backed by histBuf.
func (sc *Scratch) ints(n int) []int {
	if cap(sc.histBuf) < n {
		sc.histBuf = make([]int, n)
	}
	sc.histBuf = sc.histBuf[:n]
	for i := range sc.histBuf {
		sc.histBuf[i] = 0
	}
	return sc.histBuf
}

// int32Arena carves []int32 runs (sorted sparse conflict sets) out of
// large reusable blocks, replacing the per-build arena slices of the old
// MRCT construction.
type int32Arena struct {
	blocks [][]int32
	block  int
	used   int
}

const int32ArenaBlock = 1 << 15

// alloc returns an uninitialised slice of length n carved from the arena.
func (a *int32Arena) alloc(n int) []int32 {
	if n == 0 {
		return nil
	}
	for a.block < len(a.blocks) && len(a.blocks[a.block])-a.used < n {
		a.block++
		a.used = 0
	}
	if a.block >= len(a.blocks) {
		size := int32ArenaBlock
		if n > size {
			size = n
		}
		a.blocks = append(a.blocks, make([]int32, size))
		a.used = 0
	}
	blk := a.blocks[a.block]
	out := blk[a.used : a.used+n : a.used+n]
	a.used += n
	return out
}

// reset recycles every block; previously returned slices will be
// overwritten.
func (a *int32Arena) reset() {
	a.block, a.used = 0, 0
}

// ScratchPool recycles Scratch values across explorations, size-classed
// by power-of-two trace length so a small probe does not pin the buffers
// of a million-reference job (sync.Pool still releases idle classes under
// GC pressure). Get prefers the requested class but accepts a larger one
// — oversized scratch is merely warm — and Put files the scratch under
// the largest dimension it has served.
type ScratchPool struct {
	classes [scratchClasses]sync.Pool
}

const scratchClasses = 28

func classFor(n int) int {
	c := bits.Len(uint(n))
	if c >= scratchClasses {
		return scratchClasses - 1
	}
	return c
}

// Get returns a Scratch suited to a trace of about hint references (0 =
// unknown: any pooled scratch will do).
func (p *ScratchPool) Get(hint int) *Scratch {
	for c := classFor(hint); c < scratchClasses; c++ {
		if v := p.classes[c].Get(); v != nil {
			return v.(*Scratch)
		}
	}
	return &Scratch{hint: hint}
}

// Put returns sc to the pool. The caller must not use sc, nor anything it
// handed out, afterwards.
func (p *ScratchPool) Put(sc *Scratch) {
	if sc == nil {
		return
	}
	p.classes[classFor(sc.hint)].Put(sc)
}

// sharedScratch is the process-wide pool Explore draws from.
var sharedScratch ScratchPool

// scratchHint sizes the pool request for a source before the prelude has
// run: in-memory traces know their length, streams do not.
func scratchHint(src Source) int {
	if t, ok := src.(*trace.Trace); ok && t != nil {
		return t.Len()
	}
	return 0
}
