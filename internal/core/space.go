package core

import (
	"fmt"
	"sort"
	"strings"
)

// This file defines the declarative design-space model: a Space names the
// axes a designer wants explored (per-level depth, associativity, line
// size, replacement policy, storage technology, and the hierarchy
// topology); the evaluator in internal/dse walks it and emits a Front of
// Pareto-optimal Points over (misses, energy, area). The core package owns
// the vocabulary so the engine, the service wire format and the CLI all
// speak the same types.

// Policy names a replacement policy on the exploration axis. The zero
// value is LRU — the paper's fixed policy and the only one the analytical
// postlude models directly; the others are evaluated by the one-pass
// estimator in internal/onepass.
type Policy uint8

const (
	PolicyLRU Policy = iota
	PolicyFIFO
	PolicyRandom
	PolicyPLRU
)

// String returns the canonical lower-case policy name used on the wire
// and in CLI flags.
func (p Policy) String() string {
	switch p {
	case PolicyLRU:
		return "lru"
	case PolicyFIFO:
		return "fifo"
	case PolicyRandom:
		return "random"
	case PolicyPLRU:
		return "plru"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// ParsePolicy maps a policy name (case-insensitive) to its Policy value.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "lru":
		return PolicyLRU, nil
	case "fifo":
		return PolicyFIFO, nil
	case "random", "rand":
		return PolicyRandom, nil
	case "plru", "tree-plru":
		return PolicyPLRU, nil
	}
	return 0, fmt.Errorf("core: unknown replacement policy %q (want lru, fifo, random or plru)", s)
}

// Technology names the storage technology of a cache level. It selects
// the cacti parameter scaling, not the miss behaviour: misses depend only
// on geometry and policy.
type Technology uint8

const (
	// TechSRAM is conventional SRAM — the calibration point of the cost
	// model.
	TechSRAM Technology = iota
	// TechNVMHybrid is a hybrid NVM data array with an SRAM tag path:
	// denser and lower-leakage than SRAM, with costlier writes.
	TechNVMHybrid
)

// String returns the canonical technology name.
func (t Technology) String() string {
	switch t {
	case TechSRAM:
		return "sram"
	case TechNVMHybrid:
		return "nvm-hybrid"
	}
	return fmt.Sprintf("technology(%d)", uint8(t))
}

// ParseTechnology maps a technology name to its Technology value.
func ParseTechnology(s string) (Technology, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "sram":
		return TechSRAM, nil
	case "nvm-hybrid", "nvm", "hybrid":
		return TechNVMHybrid, nil
	}
	return 0, fmt.Errorf("core: unknown technology %q (want sram or nvm-hybrid)", s)
}

// Topology names the hierarchy shape of a Space.
type Topology uint8

const (
	// TopoUnified is a single cache serving the whole reference stream —
	// the paper's model.
	TopoUnified Topology = iota
	// TopoSplit is separate L1 instruction and data caches, no L2.
	TopoSplit
	// TopoSplitL2 is split L1I/L1D backed by a shared unified L2.
	TopoSplitL2
)

// String returns the canonical topology name.
func (t Topology) String() string {
	switch t {
	case TopoUnified:
		return "unified"
	case TopoSplit:
		return "split"
	case TopoSplitL2:
		return "split+l2"
	}
	return fmt.Sprintf("topology(%d)", uint8(t))
}

// ParseTopology maps a topology name to its Topology value.
func ParseTopology(s string) (Topology, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "unified":
		return TopoUnified, nil
	case "split":
		return TopoSplit, nil
	case "split+l2", "split-l2", "splitl2":
		return TopoSplitL2, nil
	}
	return 0, fmt.Errorf("core: unknown topology %q (want unified, split or split+l2)", s)
}

// LevelSpace describes the axes explored for one cache level. The depth
// axis is every power of two from 1 to MaxDepth and the associativity
// axis 1..MaxAssoc, matching the analytical engine's native grid.
type LevelSpace struct {
	// MaxDepth caps the explored depths (power of two). Zero uses the
	// default for the level's position in the hierarchy.
	MaxDepth int
	// MaxAssoc caps the associativity axis. Zero means DefaultMaxAssoc.
	MaxAssoc int
	// LineWords lists the line sizes (in words, powers of two) to explore.
	// Empty means one-word lines, the paper's model.
	LineWords []int
	// Policies lists the replacement policies to explore. Empty means LRU
	// only.
	Policies []Policy
	// Technologies lists the storage technologies to cost. Empty means
	// SRAM only.
	Technologies []Technology
}

// DefaultMaxAssoc bounds the associativity axis when a LevelSpace leaves
// MaxAssoc zero. Eight ways covers every embedded design point the paper
// considers.
const DefaultMaxAssoc = 8

const (
	defaultL1MaxDepth = 64
	defaultL2MaxDepth = 512
)

// normalized returns the level space with defaults filled in; last marks
// the level's hierarchy position (it only picks the MaxDepth default).
func (ls LevelSpace) normalized(last bool) LevelSpace {
	if ls.MaxDepth == 0 {
		if last {
			ls.MaxDepth = defaultL2MaxDepth
		} else {
			ls.MaxDepth = defaultL1MaxDepth
		}
	}
	if ls.MaxAssoc == 0 {
		ls.MaxAssoc = DefaultMaxAssoc
	}
	if len(ls.LineWords) == 0 {
		ls.LineWords = []int{1}
	}
	if len(ls.Policies) == 0 {
		ls.Policies = []Policy{PolicyLRU}
	}
	if len(ls.Technologies) == 0 {
		ls.Technologies = []Technology{TechSRAM}
	}
	return ls
}

// validate checks the level space axes; name labels errors.
func (ls LevelSpace) validate(name string) error {
	if ls.MaxDepth < 1 || ls.MaxDepth&(ls.MaxDepth-1) != 0 {
		return fmt.Errorf("core: %s MaxDepth %d is not a power of two >= 1", name, ls.MaxDepth)
	}
	if ls.MaxAssoc < 1 {
		return fmt.Errorf("core: %s MaxAssoc %d < 1", name, ls.MaxAssoc)
	}
	for _, lw := range ls.LineWords {
		if lw < 1 || lw&(lw-1) != 0 {
			return fmt.Errorf("core: %s line size %d words is not a power of two >= 1", name, lw)
		}
	}
	for _, p := range ls.Policies {
		if p > PolicyPLRU {
			return fmt.Errorf("core: %s has invalid policy %d", name, p)
		}
	}
	for _, t := range ls.Technologies {
		if t > TechNVMHybrid {
			return fmt.Errorf("core: %s has invalid technology %d", name, t)
		}
	}
	return nil
}

// key renders the level space canonically for cache keys.
func (ls LevelSpace) key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "d=%d,a=%d,l=", ls.MaxDepth, ls.MaxAssoc)
	for i, lw := range ls.LineWords {
		if i > 0 {
			b.WriteByte('+')
		}
		fmt.Fprintf(&b, "%d", lw)
	}
	b.WriteString(",p=")
	for i, p := range ls.Policies {
		if i > 0 {
			b.WriteByte('+')
		}
		b.WriteString(p.String())
	}
	b.WriteString(",t=")
	for i, t := range ls.Technologies {
		if i > 0 {
			b.WriteByte('+')
		}
		b.WriteString(t.String())
	}
	return b.String()
}

// Space is a declarative cache design space: the topology plus the axes
// of each level present in it. L2 is ignored unless the topology includes
// a second level. The zero Space normalizes to the paper's model — one
// unified LRU SRAM level.
type Space struct {
	Topology Topology
	// L1 describes the first-level axes. Under a split topology the same
	// axes apply to both the instruction and the data cache — the
	// evaluator pairs their candidates freely, so distinct I/D shapes
	// still emerge on the front.
	L1 LevelSpace
	// L2 describes the shared second level (TopoSplitL2 only).
	L2 LevelSpace
}

// DefaultSpace is the space explored when a caller asks for a design-space
// run without naming axes: split L1I/L1D with a shared L2, three
// deterministic policies, SRAM cost model.
func DefaultSpace() Space {
	return Space{
		Topology: TopoSplitL2,
		L1: LevelSpace{
			Policies: []Policy{PolicyLRU, PolicyFIFO, PolicyPLRU},
		},
		L2: LevelSpace{
			Policies: []Policy{PolicyLRU, PolicyFIFO, PolicyPLRU},
		},
	}
}

// Normalized returns the space with every axis defaulted.
func (s Space) Normalized() Space {
	s.L1 = s.L1.normalized(false)
	if s.Topology == TopoSplitL2 {
		s.L2 = s.L2.normalized(true)
	} else {
		s.L2 = LevelSpace{}
	}
	return s
}

// Validate checks the normalized space. Callers should normalize first;
// Validate normalizes internally so a zero Space is valid.
func (s Space) Validate() error {
	if s.Topology > TopoSplitL2 {
		return fmt.Errorf("core: invalid topology %d", s.Topology)
	}
	n := s.Normalized()
	if err := n.L1.validate("L1"); err != nil {
		return err
	}
	if s.Topology == TopoSplitL2 {
		if err := n.L2.validate("L2"); err != nil {
			return err
		}
	}
	return nil
}

// Key renders the normalized space as a canonical string, for result
// memoisation and logs.
func (s Space) Key() string {
	n := s.Normalized()
	k := n.Topology.String() + "|" + n.L1.key()
	if n.Topology == TopoSplitL2 {
		k += "|" + n.L2.key()
	}
	return k
}

// LevelConfig is one concrete cache level chosen from a Space.
type LevelConfig struct {
	// Level names the slot: "L1" (unified), "L1I"/"L1D" (split), "L2".
	Level      string
	Depth      int
	Assoc      int
	LineWords  int
	Policy     Policy
	Technology Technology
}

// SizeWords returns the level's capacity in words.
func (c LevelConfig) SizeWords() int { return c.Depth * c.Assoc * c.LineWords }

// String renders the level compactly, e.g. "L1I D=64 A=2 lw=1 lru sram".
func (c LevelConfig) String() string {
	return fmt.Sprintf("%s D=%d A=%d lw=%d %s %s",
		c.Level, c.Depth, c.Assoc, c.LineWords, c.Policy, c.Technology)
}

// Point is one evaluated hierarchy: its per-level configuration and the
// three objectives of the design space. Misses counts total trips to main
// memory (cold plus non-cold misses of the last level, both streams under
// a split topology); EnergyPJ the modelled access energy of the whole
// hierarchy including the miss penalty; AreaUM2 the summed cacti area.
type Point struct {
	Levels   []LevelConfig
	Misses   int
	EnergyPJ float64
	AreaUM2  float64
}

// Key renders the point's configuration canonically — the tie-break order
// of the front.
func (p Point) Key() string {
	parts := make([]string, len(p.Levels))
	for i, l := range p.Levels {
		parts[i] = l.String()
	}
	return strings.Join(parts, "; ")
}

// Dominates reports whether p is at least as good as q on every objective
// and strictly better on at least one.
func (p Point) Dominates(q Point) bool {
	if p.Misses > q.Misses || p.EnergyPJ > q.EnergyPJ || p.AreaUM2 > q.AreaUM2 {
		return false
	}
	return p.Misses < q.Misses || p.EnergyPJ < q.EnergyPJ || p.AreaUM2 < q.AreaUM2
}

// ties reports whether p and q are exactly equal on all three objectives.
func (p Point) ties(q Point) bool {
	return p.Misses == q.Misses && p.EnergyPJ == q.EnergyPJ && p.AreaUM2 == q.AreaUM2
}

// PruneStats counts per-level candidate evaluations: how many (depth,
// assoc, policy, line) cells the space contains, how many were actually
// miss-evaluated, and how many the analytical cuts skipped. Technology is
// excluded — it shares the miss evaluation, so counting it would inflate
// the prune rate without skipping any work.
type PruneStats struct {
	// Candidates is the number of candidate cells enumerated.
	Candidates int
	// Evaluated is the number whose miss count was computed.
	Evaluated int
	// PrunedDominated counts cells skipped because they are analytically
	// dominated: associativities past A_zero (LRU reaches zero non-cold
	// misses at no greater cost) and LRU plateau associativities (same
	// misses as a cheaper neighbour).
	PrunedDominated int
	// PrunedThreshold counts non-LRU cells skipped by the α-threshold:
	// associativities past the point where the LRU profile shows the
	// level within eps of its compulsory floor.
	PrunedThreshold int
}

// Pruned returns the total number of skipped candidate cells.
func (s PruneStats) Pruned() int { return s.PrunedDominated + s.PrunedThreshold }

// Rate returns the fraction of candidates pruned, in [0, 1].
func (s PruneStats) Rate() float64 {
	if s.Candidates == 0 {
		return 0
	}
	return float64(s.Pruned()) / float64(s.Candidates)
}

// Add folds another tally into s.
func (s *PruneStats) Add(o PruneStats) {
	s.Candidates += o.Candidates
	s.Evaluated += o.Evaluated
	s.PrunedDominated += o.PrunedDominated
	s.PrunedThreshold += o.PrunedThreshold
}

// Front is a Pareto front over Points: a mutually non-dominated set with
// a deterministic order. Exact objective ties keep only the point with
// the lexically smallest Key, so the front is bit-stable regardless of
// insertion order.
type Front struct {
	pts []Point
	// Stats tallies the candidate pruning of the exploration that built
	// the front.
	Stats PruneStats
}

// Add offers a point to the front. It returns false if an existing point
// dominates (or exactly ties with a smaller key than) the candidate;
// otherwise the candidate enters and every point it dominates leaves.
func (f *Front) Add(p Point) bool {
	for _, q := range f.pts {
		if q.Dominates(p) {
			return false
		}
		if q.ties(p) && q.Key() <= p.Key() {
			return false
		}
	}
	kept := f.pts[:0]
	for _, q := range f.pts {
		if p.Dominates(q) || (p.ties(q) && p.Key() < q.Key()) {
			continue
		}
		kept = append(kept, q)
	}
	f.pts = append(kept, p)
	return true
}

// Points returns the front sorted by (misses, energy, area, key). The
// returned slice is the front's own storage; callers must not mutate it.
func (f *Front) Points() []Point {
	sort.Slice(f.pts, func(i, j int) bool {
		a, b := f.pts[i], f.pts[j]
		if a.Misses != b.Misses {
			return a.Misses < b.Misses
		}
		if a.EnergyPJ != b.EnergyPJ {
			return a.EnergyPJ < b.EnergyPJ
		}
		if a.AreaUM2 != b.AreaUM2 {
			return a.AreaUM2 < b.AreaUM2
		}
		return a.Key() < b.Key()
	})
	return f.pts
}

// Len returns the number of points on the front.
func (f *Front) Len() int { return len(f.pts) }

// DefaultAlphaEps is the α-threshold slack: the associativity axis is
// cut once all but this fraction of the achievable miss improvement is
// realized.
const DefaultAlphaEps = 0.05

// AlphaThreshold computes the associativity threshold α* of an LRU level
// profile over the axis 1..maxAssoc: the smallest associativity that
// realizes at least (1-eps) of the improvement the axis can deliver,
// i.e. the first a with
//
//	misses(a) - floor <= eps * (misses(1) - floor)
//
// where floor is the miss count at the end of the axis (min(maxAssoc,
// A_zero) ways). Bender et al. (arXiv:2304.04954) show a set-associative
// LRU cache behaves like a fully-associative one beyond a modest
// threshold — additional ways past it buy negligible improvement. On an
// analytical profile the threshold is exact, so associativities past it
// are pruned for the approximating policies (FIFO/Random/PLRU track
// LRU's diminishing returns there). eps <= 0 uses DefaultAlphaEps.
func AlphaThreshold(l *LevelResult, maxAssoc int, eps float64) int {
	if eps <= 0 {
		eps = DefaultAlphaEps
	}
	last := l.AZero
	if maxAssoc >= 1 && maxAssoc < last {
		last = maxAssoc
	}
	m1 := l.Misses(1)
	floor := l.Misses(last)
	if m1 <= floor {
		return 1
	}
	budget := floor + int(eps*float64(m1-floor))
	for a := 1; a < last; a++ {
		if l.Misses(a) <= budget {
			return a
		}
	}
	return last
}
