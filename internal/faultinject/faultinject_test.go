package faultinject

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisarmedIsNoOp(t *testing.T) {
	var g Registry
	if g.Enabled() {
		t.Fatal("zero registry reports enabled")
	}
	for i := 0; i < 100; i++ {
		if err := g.Hit("any.site"); err != nil {
			t.Fatalf("disarmed Hit returned %v", err)
		}
	}
	if got := g.Stats(); len(got) != 0 {
		t.Fatalf("disarmed stats = %v", got)
	}
}

func TestErrorInjection(t *testing.T) {
	var g Registry
	if err := g.Arm("store.put=error(boom)", 1); err != nil {
		t.Fatal(err)
	}
	err := g.Hit("store.put")
	if err == nil {
		t.Fatal("rate-1 rule did not fire")
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Site != "store.put" || ie.Msg != "boom" {
		t.Fatalf("err = %#v", err)
	}
	if !IsInjected(err) {
		t.Fatal("IsInjected(injected) = false")
	}
	if IsInjected(errors.New("organic")) {
		t.Fatal("IsInjected(organic) = true")
	}
	if err := g.Hit("store.get"); err != nil {
		t.Fatalf("unmatched site fired: %v", err)
	}
}

func TestPrefixMatchAndPrecedence(t *testing.T) {
	var g Registry
	spec := "store.*=error(wide);store.put.*=error(narrow);store.get=error(exact)"
	if err := g.Arm(spec, 7); err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"store.put.spool": "narrow", // longest prefix wins
		"store.fsync":     "wide",
		"store.get":       "exact", // exact beats any prefix
	}
	for site, want := range cases {
		err := g.Hit(site)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("Hit(%q) = %v, want msg %q", site, err, want)
		}
	}
	if err := g.Hit("queue.submit"); err != nil {
		t.Errorf("unrelated site fired: %v", err)
	}
}

// TestDeterministicSchedule is the property the chaos suite leans on:
// the same (spec, seed) pair fires on exactly the same evaluations.
func TestDeterministicSchedule(t *testing.T) {
	run := func(seed uint64) []bool {
		var g Registry
		if err := g.Arm("s=error(x)@0.3", seed); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 200)
		for i := range out {
			out[i] = g.Hit("s") != nil
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at evaluation %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestRateIsApproximatelyHonoured(t *testing.T) {
	var g Registry
	if err := g.Arm("s=error(x)@0.25", 99); err != nil {
		t.Fatal(err)
	}
	fired := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if g.Hit("s") != nil {
			fired++
		}
	}
	frac := float64(fired) / n
	if frac < 0.2 || frac > 0.3 {
		t.Fatalf("rate 0.25 fired at %.3f", frac)
	}
	st := g.Stats()
	if len(st) != 1 || st[0].Evals != n || st[0].Fires != int64(fired) {
		t.Fatalf("stats = %+v, fired = %d", st, fired)
	}
	if g.TotalFires() != int64(fired) {
		t.Fatalf("TotalFires = %d, want %d", g.TotalFires(), fired)
	}
}

func TestDelayInjection(t *testing.T) {
	var g Registry
	if err := g.Arm("slow=delay(30ms)", 1); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := g.Hit("slow"); err != nil {
		t.Fatalf("delay rule returned error: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay rule slept only %v", d)
	}
}

func TestPanicInjection(t *testing.T) {
	var g Registry
	if err := g.Arm("boom=panic(kaboom)", 1); err != nil {
		t.Fatal(err)
	}
	defer func() {
		p := recover()
		if p == nil || !strings.Contains(p.(string), "kaboom") {
			t.Fatalf("recover() = %v", p)
		}
	}()
	_ = g.Hit("boom")
	t.Fatal("panic rule did not panic")
}

func TestSpecErrors(t *testing.T) {
	bad := []string{
		"nosign",
		"s=weird(x)",
		"s=error(x)@0",
		"s=error(x)@1.5",
		"s=error(x)@nan",
		"s=delay(xyz)",
		"s=error",
		"=error(x)",
	}
	for _, spec := range bad {
		var g Registry
		if err := g.Arm(spec, 1); err == nil {
			t.Errorf("Arm(%q) accepted", spec)
		}
	}
}

func TestArmReplacesAndDisarm(t *testing.T) {
	var g Registry
	if err := g.Arm("a=error(one)", 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Arm("b=error(two)", 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Hit("a"); err != nil {
		t.Fatalf("replaced rule still fires: %v", err)
	}
	if err := g.Hit("b"); err == nil {
		t.Fatal("new rule does not fire")
	}
	g.Disarm()
	if g.Enabled() || g.Hit("b") != nil {
		t.Fatal("disarm did not clear rules")
	}
	// Arming the empty spec is equivalent to disarming.
	if err := g.Arm("", 1); err != nil {
		t.Fatal(err)
	}
	if g.Enabled() {
		t.Fatal("empty spec left registry armed")
	}
}

func TestConcurrentHits(t *testing.T) {
	var g Registry
	if err := g.Arm("s=error(x)@0.5", 5); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_ = g.Hit("s")
			}
		}()
	}
	wg.Wait()
	st := g.Stats()
	if len(st) != 1 || st[0].Evals != 4000 {
		t.Fatalf("stats after concurrent hits = %+v", st)
	}
}
