// Package faultinject is a dependency-free failpoint registry for chaos
// testing the service's failure paths. Code under test declares named
// sites ("tracestore.put", "queue.submit", "core.postlude") and calls
// Hit at each; a disarmed registry makes Hit a single atomic load and a
// nil return, so production binaries pay nothing. Arming the registry —
// from a test, the serve command's -faults flag, or the CACHEDSE_FAULTS
// environment variable — attaches rules that inject errors, latency, or
// panics at a configured rate.
//
// Schedules are deterministic: every rule draws from its own splitmix64
// stream seeded by the registry seed and the site name, so the same
// (spec, seed) pair fires the same faults at the same evaluations on
// every run. That is what lets a chaos suite assert exact behaviour
// ("the 3rd put fails") instead of flaky probabilities.
//
// Spec grammar (semicolon-separated rules):
//
//	site=mode(arg)@rate
//
//	site  a failpoint name; a trailing '*' prefix-matches ("tracestore.*")
//	mode  error(msg) | delay(duration) | panic(msg)
//	rate  probability in (0, 1], or omitted for 1 (always fire)
//
// Example:
//
//	tracestore.put=error(injected)@0.05;tracestore.fsync=delay(2ms)@0.5
package faultinject

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// InjectedError is the error returned by a firing error-mode rule. It
// carries the site so logs and tests can tell injected failures from
// organic ones.
type InjectedError struct {
	Site string
	Msg  string
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: %s at %s", e.Msg, e.Site)
}

// IsInjected reports whether err is (or wraps) an injected fault.
func IsInjected(err error) bool {
	var ie *InjectedError
	return errors.As(err, &ie)
}

// mode is what a firing rule does.
type mode int

const (
	modeError mode = iota
	modeDelay
	modePanic
)

// rule is one armed failpoint: a site pattern, an action, and a firing
// rate driven by a private deterministic stream.
type rule struct {
	pattern string // exact site, or prefix ending in '*'
	mode    mode
	msg     string
	delay   time.Duration
	rate    float64

	mu    sync.Mutex
	rng   uint64 // splitmix64 state
	evals int64
	fires int64
}

// fire decides whether this evaluation fires, advancing the rule's
// deterministic stream.
func (r *rule) fire() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evals++
	if r.rate >= 1 {
		r.fires++
		return true
	}
	r.rng += 0x9e3779b97f4a7c15
	z := r.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	// 53 random bits -> uniform float64 in [0, 1).
	u := float64(z>>11) / (1 << 53)
	if u < r.rate {
		r.fires++
		return true
	}
	return false
}

// SiteStats is the evaluation/fire count of one armed rule.
type SiteStats struct {
	Pattern string `json:"pattern"`
	Evals   int64  `json:"evals"`
	Fires   int64  `json:"fires"`
}

// Registry holds armed failpoint rules. The zero value is disarmed and
// ready to use; all methods are safe for concurrent use.
type Registry struct {
	armed atomic.Bool
	mu    sync.Mutex
	rules []*rule
	// totalFires accumulates across Arm/Disarm cycles so the exported
	// fault counter stays monotone even when rules are swapped out.
	totalFires atomic.Int64
}

// hashSite folds a site name into a 64-bit seed component (FNV-1a).
func hashSite(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Arm parses spec and installs its rules, replacing any previous set.
// An empty spec disarms. The seed fixes every rule's firing schedule.
func (g *Registry) Arm(spec string, seed uint64) error {
	rules, err := parseSpec(spec, seed)
	if err != nil {
		return err
	}
	g.mu.Lock()
	g.rules = rules
	g.mu.Unlock()
	g.armed.Store(len(rules) > 0)
	return nil
}

// Disarm removes every rule; Hit returns to its no-op fast path.
func (g *Registry) Disarm() {
	g.mu.Lock()
	g.rules = nil
	g.mu.Unlock()
	g.armed.Store(false)
}

// Enabled reports whether any rule is armed.
func (g *Registry) Enabled() bool { return g.armed.Load() }

// match returns the armed rule for site: an exact pattern wins, then the
// longest matching '*' prefix pattern.
func (g *Registry) match(site string) *rule {
	g.mu.Lock()
	defer g.mu.Unlock()
	var best *rule
	bestLen := -1
	for _, r := range g.rules {
		if p, ok := strings.CutSuffix(r.pattern, "*"); ok {
			if strings.HasPrefix(site, p) && len(p) > bestLen {
				best, bestLen = r, len(p)
			}
		} else if r.pattern == site {
			return r
		}
	}
	return best
}

// Hit evaluates the failpoint named site. Disarmed, it is a single
// atomic load returning nil. Armed, a matching rule that fires either
// returns an *InjectedError, sleeps its configured delay (then returns
// nil), or panics with its message.
func (g *Registry) Hit(site string) error {
	if !g.armed.Load() {
		return nil
	}
	r := g.match(site)
	if r == nil || !r.fire() {
		return nil
	}
	g.totalFires.Add(1)
	switch r.mode {
	case modeDelay:
		time.Sleep(r.delay)
		return nil
	case modePanic:
		panic(fmt.Sprintf("faultinject: %s at %s", r.msg, site))
	default:
		return &InjectedError{Site: site, Msg: r.msg}
	}
}

// Stats returns per-rule evaluation and fire counts, ordered by pattern.
func (g *Registry) Stats() []SiteStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]SiteStats, 0, len(g.rules))
	for _, r := range g.rules {
		r.mu.Lock()
		out = append(out, SiteStats{Pattern: r.pattern, Evals: r.evals, Fires: r.fires})
		r.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pattern < out[j].Pattern })
	return out
}

// TotalFires returns the total number of injected faults over the
// registry's lifetime, across Arm/Disarm cycles — a monotone counter.
func (g *Registry) TotalFires() int64 {
	return g.totalFires.Load()
}

func parseSpec(spec string, seed uint64) ([]*rule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var rules []*rule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		site, action, ok := strings.Cut(part, "=")
		site = strings.TrimSpace(site)
		if !ok || site == "" {
			return nil, fmt.Errorf("faultinject: rule %q: want site=mode(arg)@rate", part)
		}
		action, rateStr, hasRate := strings.Cut(action, "@")
		rate := 1.0
		if hasRate {
			v, err := strconv.ParseFloat(strings.TrimSpace(rateStr), 64)
			if err != nil || math.IsNaN(v) || v <= 0 || v > 1 {
				return nil, fmt.Errorf("faultinject: rule %q: rate %q is not in (0, 1]", part, rateStr)
			}
			rate = v
		}
		action = strings.TrimSpace(action)
		open := strings.IndexByte(action, '(')
		if open < 0 || !strings.HasSuffix(action, ")") {
			return nil, fmt.Errorf("faultinject: rule %q: want mode(arg)", part)
		}
		modeName, arg := action[:open], action[open+1:len(action)-1]
		r := &rule{pattern: site, rate: rate, rng: seed ^ hashSite(site)}
		switch modeName {
		case "error":
			r.mode = modeError
			r.msg = arg
			if r.msg == "" {
				r.msg = "injected fault"
			}
		case "delay":
			d, err := time.ParseDuration(arg)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("faultinject: rule %q: bad delay %q", part, arg)
			}
			r.mode = modeDelay
			r.delay = d
		case "panic":
			r.mode = modePanic
			r.msg = arg
			if r.msg == "" {
				r.msg = "injected panic"
			}
		default:
			return nil, fmt.Errorf("faultinject: rule %q: unknown mode %q", part, modeName)
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// Default is the process-wide registry the production code paths consult.
var Default = &Registry{}

// Enabled reports whether the default registry has rules armed.
func Enabled() bool { return Default.Enabled() }

// Hit evaluates site against the default registry.
func Hit(site string) error { return Default.Hit(site) }

// Arm installs spec on the default registry.
func Arm(spec string, seed uint64) error { return Default.Arm(spec, seed) }

// Disarm clears the default registry.
func Disarm() { Default.Disarm() }

// Stats returns the default registry's per-rule counters.
func Stats() []SiteStats { return Default.Stats() }

// TotalFires returns the default registry's total injected-fault count.
func TotalFires() int64 { return Default.TotalFires() }
