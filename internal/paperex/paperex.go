// Package paperex holds the paper's running example (Tables 1–4 and
// Figure 3) as a shared fixture for golden tests, examples and the repro
// tool.
//
// The published Table 1 lists the ten 4-bit references only as a bit matrix
// that did not survive text extraction, but the sequence is uniquely
// recoverable from the derived tables: Table 2 fixes the unique references
// and their identifiers (1=1011, 2=1100, 3=0110, 4=0011, 5=0100, confirmed
// by the zero/one sets of Table 3), and Table 4's conflict sets pin down the
// interleaving. The sequence below reproduces Tables 2, 3 and 4 and
// Figure 3 exactly.
package paperex

import "github.com/example/cachedse/internal/trace"

// Addrs is the original ten-reference trace of Table 1.
var Addrs = []uint32{
	0b1011, // 1
	0b1100, // 2
	0b0110, // 3
	0b0011, // 4
	0b1011, // 1
	0b0100, // 5
	0b1100, // 2
	0b0011, // 4
	0b1011, // 1
	0b0110, // 3
}

// Unique is the stripped trace of Table 2 in identifier order. The paper
// numbers identifiers from 1; the slice index is the zero-based identifier.
var Unique = []uint32{0b1011, 0b1100, 0b0110, 0b0011, 0b0100}

// IDs is the original trace as one-based paper identifiers.
var IDs = []int{1, 2, 3, 4, 1, 5, 2, 4, 1, 3}

// ZeroOne lists the zero/one sets of Table 3 as one-based identifier
// slices, indexed by address bit (B0 first).
var ZeroOne = []struct{ Zero, One []int }{
	{Zero: []int{2, 3, 5}, One: []int{1, 4}},
	{Zero: []int{2, 5}, One: []int{1, 3, 4}},
	{Zero: []int{1, 4}, One: []int{2, 3, 5}},
	{Zero: []int{3, 4, 5}, One: []int{1, 2}},
}

// MRCT lists the conflict sets of Table 4 per one-based identifier: for
// each identifier, one set per non-cold occurrence, each a one-based
// identifier slice.
var MRCT = [][][]int{
	1: {{2, 3, 4}, {2, 4, 5}},
	2: {{1, 3, 4, 5}},
	3: {{1, 2, 4, 5}},
	4: {{1, 2, 5}},
	5: {},
}

// Trace returns the running example as a fresh data trace.
func Trace() *trace.Trace {
	return trace.FromAddrs(trace.DataRead, Addrs)
}

// BCATLevels lists Figure 3's tree contents level by level as one-based
// identifier sets, left to right, including the empty sets the figure
// shows. Level 0 is the two children of the root split on B0.
var BCATLevels = [][][]int{
	{{2, 3, 5}, {1, 4}},
	{{2, 5}, {3}, {}, {1, 4}},
	{{}, {2, 5}, {1, 4}, {}},
	{{5}, {2}, {4}, {1}},
}
