// Package bus models the address-bus activity of the memory traffic the
// explorer reasons about — the "bus architecture and other system-on-a-chip
// artifacts" the paper names as its future-work axis (§4), and a recurring
// theme of the authors' SoC power work (cf. "Reference Caching Using Unit
// Distance Redundant Codes for Activity Reduction on Address Buses").
//
// Off-chip bus transitions dominate the power cost of cache misses in
// embedded SoCs, so the number of bus line toggles per trace is the figure
// of merit. The package implements the classic low-power encodings and a
// transition counter, letting the DSE harness weigh cache instances by the
// bus activity their miss streams generate.
package bus

import (
	"fmt"
	"math/bits"

	"github.com/example/cachedse/internal/trace"
)

// Encoder maps an address stream to physical bus states. Implementations
// are stateful (encodings exploit sequentiality); Reset returns them to
// power-up state.
type Encoder interface {
	// Name identifies the encoding.
	Name() string
	// Lines returns the number of bus lines the encoding drives.
	Lines() int
	// Encode returns the bus state driven for addr.
	Encode(addr uint32) uint64
	// Reset restores power-up state (bus at zero).
	Reset()
}

// Binary drives the raw address: the baseline.
type Binary struct{}

// Name implements Encoder.
func (Binary) Name() string { return "binary" }

// Lines implements Encoder.
func (Binary) Lines() int { return 32 }

// Encode implements Encoder.
func (Binary) Encode(addr uint32) uint64 { return uint64(addr) }

// Reset implements Encoder.
func (Binary) Reset() {}

// Gray drives the Gray code of the address: consecutive addresses differ
// in exactly one line, so sequential streams toggle minimally.
type Gray struct{}

// Name implements Encoder.
func (Gray) Name() string { return "gray" }

// Lines implements Encoder.
func (Gray) Lines() int { return 32 }

// Encode implements Encoder.
func (Gray) Encode(addr uint32) uint64 { return uint64(addr ^ addr>>1) }

// Reset implements Encoder.
func (Gray) Reset() {}

// T0 freezes the address lines on sequential accesses and signals the
// increment on a dedicated INC line (Benini et al.): for addr == prev+1
// the 32 address lines do not move at all.
type T0 struct {
	prev    uint32
	started bool
	inc     bool
	frozen  uint32
}

// Name implements Encoder.
func (*T0) Name() string { return "t0" }

// Lines implements Encoder.
func (*T0) Lines() int { return 33 }

// Encode implements Encoder.
func (t *T0) Encode(addr uint32) uint64 {
	if t.started && addr == t.prev+1 {
		t.inc = true
		// Address lines keep their frozen value; INC line high.
		t.prev = addr
		return uint64(t.frozen) | 1<<32
	}
	t.inc = false
	t.started = true
	t.prev = addr
	t.frozen = addr
	return uint64(addr)
}

// Reset implements Encoder.
func (t *T0) Reset() { *t = T0{} }

// BusInvert inverts the address when more than half the lines would
// toggle, signalling inversion on an extra line (Stan & Burleson); worst-
// case toggles drop to Lines()/2 + 1.
type BusInvert struct {
	prev uint64
}

// Name implements Encoder.
func (*BusInvert) Name() string { return "bus-invert" }

// Lines implements Encoder.
func (*BusInvert) Lines() int { return 33 }

// Encode implements Encoder.
func (b *BusInvert) Encode(addr uint32) uint64 {
	// Candidate states: as-is with the invert line low, or complemented
	// with the invert line high; drive whichever toggles fewer lines.
	low := uint64(addr)
	high := uint64(^addr) | 1<<32
	next := low
	if bits.OnesCount64(b.prev^high) < bits.OnesCount64(b.prev^low) {
		next = high
	}
	b.prev = next
	return next
}

// Reset implements Encoder.
func (b *BusInvert) Reset() { b.prev = 0 }

// Transitions counts total bus line toggles driving the trace's addresses
// through the encoder, starting from the power-up state.
func Transitions(t *trace.Trace, enc Encoder) int {
	enc.Reset()
	prev := uint64(0)
	total := 0
	for _, r := range t.Refs {
		next := enc.Encode(r.Addr)
		total += bits.OnesCount64(prev ^ next)
		prev = next
	}
	return total
}

// Report compares encodings over one trace.
type Report struct {
	Name        string
	Lines       int
	Transitions int
	// PerAccess is transitions per reference.
	PerAccess float64
}

// Compare runs every encoder over the trace.
func Compare(t *trace.Trace, encs ...Encoder) []Report {
	if len(encs) == 0 {
		encs = []Encoder{Binary{}, Gray{}, &T0{}, &BusInvert{}}
	}
	out := make([]Report, 0, len(encs))
	for _, e := range encs {
		tr := Transitions(t, e)
		r := Report{Name: e.Name(), Lines: e.Lines(), Transitions: tr}
		if t.Len() > 0 {
			r.PerAccess = float64(tr) / float64(t.Len())
		}
		out = append(out, r)
	}
	return out
}

// String renders a report row.
func (r Report) String() string {
	return fmt.Sprintf("%-10s lines=%d transitions=%d (%.2f/access)", r.Name, r.Lines, r.Transitions, r.PerAccess)
}
