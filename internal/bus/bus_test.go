package bus

import (
	"math/bits"
	"strings"
	"testing"
	"testing/quick"

	"github.com/example/cachedse/internal/trace"
)

func seq(n int) *trace.Trace {
	addrs := make([]uint32, n)
	for i := range addrs {
		addrs[i] = uint32(i)
	}
	return trace.FromAddrs(trace.Instr, addrs)
}

func TestBinaryTransitions(t *testing.T) {
	// 0 -> 1 -> 2 -> 3: toggles 1, 2 (01->10), 1 = 4.
	tr := seq(4)
	if got := Transitions(tr, Binary{}); got != 4 {
		t.Fatalf("binary transitions = %d, want 4", got)
	}
}

func TestGraySequentialIsOnePerStep(t *testing.T) {
	tr := seq(1000)
	got := Transitions(tr, Gray{})
	// Power-up 0 -> gray(0)=0 costs 0; each subsequent step costs exactly 1.
	if got != 999 {
		t.Fatalf("gray transitions = %d, want 999", got)
	}
}

func TestT0SequentialFreezesBus(t *testing.T) {
	tr := seq(1000)
	got := Transitions(tr, &T0{})
	// First access drives the address (0 -> 0: free), second raises INC
	// (1 toggle), then the bus never moves again.
	if got > 2 {
		t.Fatalf("t0 transitions = %d, want <= 2 for a pure sequential stream", got)
	}
}

func TestT0RandomFallsBack(t *testing.T) {
	tr := trace.FromAddrs(trace.DataRead, []uint32{5, 100, 3, 77})
	enc := &T0{}
	bin := Transitions(tr, Binary{})
	got := Transitions(tr, enc)
	// Non-sequential: T0 behaves like binary (plus INC possibly dropping).
	if got < bin {
		t.Fatalf("t0 on random stream = %d, cheaper than binary %d?", got, bin)
	}
}

func TestT0Reset(t *testing.T) {
	enc := &T0{}
	enc.Encode(10)
	enc.Encode(11)
	enc.Reset()
	// After reset, 1 is not treated as prev+1 continuation.
	if got := enc.Encode(1); got != 1 {
		t.Fatalf("post-reset Encode(1) = %#x, want 1", got)
	}
}

func TestBusInvertWorstCaseBound(t *testing.T) {
	// Alternating all-zeros / all-ones: binary toggles 32 per step,
	// bus-invert at most 17.
	addrs := make([]uint32, 100)
	for i := range addrs {
		if i%2 == 1 {
			addrs[i] = 0xFFFFFFFF
		}
	}
	tr := trace.FromAddrs(trace.DataRead, addrs)
	bin := Transitions(tr, Binary{})
	bi := Transitions(tr, &BusInvert{})
	if bin != 99*32 {
		t.Fatalf("binary = %d, want %d", bin, 99*32)
	}
	if bi > 99*17 {
		t.Fatalf("bus-invert = %d, exceeds worst-case bound %d", bi, 99*17)
	}
}

func TestCompareDefaultEncoders(t *testing.T) {
	tr := seq(100)
	reports := Compare(tr)
	if len(reports) != 4 {
		t.Fatalf("%d reports, want 4", len(reports))
	}
	byName := map[string]Report{}
	for _, r := range reports {
		byName[r.Name] = r
		if r.PerAccess < 0 {
			t.Errorf("%s: negative per-access", r.Name)
		}
	}
	// On a sequential stream: t0 < gray < binary.
	if !(byName["t0"].Transitions < byName["gray"].Transitions &&
		byName["gray"].Transitions < byName["binary"].Transitions) {
		t.Fatalf("sequential ordering violated: %v", reports)
	}
}

func TestCompareEmptyTrace(t *testing.T) {
	for _, r := range Compare(trace.New(0)) {
		if r.Transitions != 0 || r.PerAccess != 0 {
			t.Fatalf("empty trace produced activity: %+v", r)
		}
	}
}

func TestReportString(t *testing.T) {
	r := Report{Name: "gray", Lines: 32, Transitions: 10, PerAccess: 0.5}
	if !strings.Contains(r.String(), "gray") || !strings.Contains(r.String(), "10") {
		t.Fatalf("String = %q", r.String())
	}
}

// Property: gray encoding is a bijection (x^x>>1 is invertible), and
// adjacent integers differ in exactly one bit.
func TestQuickGrayProperties(t *testing.T) {
	f := func(x uint32) bool {
		g1 := Gray{}.Encode(x)
		g2 := Gray{}.Encode(x + 1)
		return bits.OnesCount64(g1^g2) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: bus-invert never toggles more than 17 lines per step and
// never beats 0.
func TestQuickBusInvertBound(t *testing.T) {
	f := func(addrs []uint32) bool {
		enc := &BusInvert{}
		enc.Reset()
		prev := uint64(0)
		for _, a := range addrs {
			next := enc.Encode(a)
			d := bits.OnesCount64(prev ^ next)
			if d > 17 {
				return false
			}
			prev = next
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: bus-invert total activity never exceeds binary + one invert
// line toggle per access.
func TestQuickBusInvertNotWorse(t *testing.T) {
	f := func(addrs []uint32) bool {
		tr := trace.FromAddrs(trace.DataRead, addrs)
		bi := Transitions(tr, &BusInvert{})
		bin := Transitions(tr, Binary{})
		return bi <= bin+len(addrs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
