// Package report renders the paper's tables and computes the Figure 4
// regression: experiment harness output formatting, CSV emission, and
// least-squares fitting shared by cmd/repro and the benchmark suite.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a titled grid of cells rendered with aligned columns.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the table as fixed-width text.
func (t *Table) Render() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		// Trim trailing padding.
		s := b.String()
		trimmed := strings.TrimRight(s, " ")
		b.Reset()
		b.WriteString(trimmed)
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		sep := make([]string, cols)
		for i := range sep {
			sep[i] = strings.Repeat("-", widths[i])
		}
		writeRow(sep)
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// CSV returns the table as comma-separated values (no escaping — cells in
// this repository never contain commas or quotes).
func (t *Table) CSV() string {
	var b strings.Builder
	if len(t.Headers) > 0 {
		b.WriteString(strings.Join(t.Headers, ","))
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Fit is a least-squares linear fit y = Slope*x + Intercept with its
// coefficient of determination.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
	N         int
}

// LinearFit computes the ordinary least squares fit of ys on xs. It
// returns an error when fewer than two points are given or all xs are
// identical.
func LinearFit(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, fmt.Errorf("report: %d xs but %d ys", len(xs), len(ys))
	}
	n := len(xs)
	if n < 2 {
		return Fit{}, fmt.Errorf("report: need at least 2 points, got %d", n)
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, fmt.Errorf("report: all x values identical")
	}
	slope := sxy / sxx
	fit := Fit{Slope: slope, Intercept: my - slope*mx, N: n}
	if syy == 0 {
		fit.R2 = 1 // constant ys fitted exactly
	} else {
		fit.R2 = sxy * sxy / (sxx * syy)
	}
	if math.IsNaN(fit.R2) {
		fit.R2 = 0
	}
	return fit, nil
}

// Predict evaluates the fit at x.
func (f Fit) Predict(x float64) float64 { return f.Slope*x + f.Intercept }

// GeoMean returns the geometric mean of positive values; zero if the input
// is empty or contains non-positive values.
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}

// AsciiScatter renders an ASCII scatter plot of the points with the fitted
// line, the textual stand-in for Figure 4.
func AsciiScatter(xs, ys []float64, fit Fit, width, height int) string {
	if len(xs) == 0 || width < 8 || height < 4 {
		return ""
	}
	minX, maxX := xs[0], xs[0]
	minY, maxY := ys[0], ys[0]
	for i := range xs {
		minX, maxX = math.Min(minX, xs[i]), math.Max(maxX, xs[i])
		minY, maxY = math.Min(minY, ys[i]), math.Max(maxY, ys[i])
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, ch byte) {
		c := int((x - minX) / (maxX - minX) * float64(width-1))
		r := height - 1 - int((y-minY)/(maxY-minY)*float64(height-1))
		if c >= 0 && c < width && r >= 0 && r < height {
			if grid[r][c] == ' ' || ch == '*' {
				grid[r][c] = ch
			}
		}
	}
	for c := 0; c < width; c++ {
		x := minX + (maxX-minX)*float64(c)/float64(width-1)
		plot(x, fit.Predict(x), '.')
	}
	for i := range xs {
		plot(xs[i], ys[i], '*')
	}
	var b strings.Builder
	fmt.Fprintf(&b, "y: %.3g .. %.3g   x: %.3g .. %.3g   (* data, . fit)\n", minY, maxY, minX, maxX)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	return b.String()
}
