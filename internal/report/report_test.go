package report

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:   "Table X",
		Headers: []string{"name", "value"},
	}
	tb.AddRow("a", 1)
	tb.AddRow("longer", 123456)
	out := tb.Render()
	if !strings.HasPrefix(out, "Table X\n") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Fatalf("header line wrong: %q", lines[1])
	}
	// Columns align: "longer" defines the first column width.
	if !strings.HasPrefix(lines[4], "longer  123456") {
		t.Fatalf("row line wrong: %q", lines[4])
	}
	if !strings.HasPrefix(lines[3], "a       1") {
		t.Fatalf("row line wrong: %q", lines[3])
	}
}

func TestTableRenderNoHeaders(t *testing.T) {
	tb := &Table{}
	tb.AddRow("x")
	out := tb.Render()
	if out != "x\n" {
		t.Fatalf("Render = %q", out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := &Table{Headers: []string{"a"}}
	tb.AddRow("1", "2", "3")
	out := tb.Render()
	if !strings.Contains(out, "3") {
		t.Fatalf("ragged row dropped cells:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Headers: []string{"a", "b"}}
	tb.AddRow(1, 2)
	if got, want := tb.CSV(), "a,b\n1,2\n"; got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-1) > 1e-12 {
		t.Fatalf("fit = %+v, want slope 2 intercept 1", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
	if got := fit.Predict(10); math.Abs(got-21) > 1e-9 {
		t.Fatalf("Predict(10) = %v, want 21", got)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5}
	ys := []float64{0.1, 0.9, 2.2, 2.8, 4.1, 4.9}
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope < 0.9 || fit.Slope > 1.1 {
		t.Fatalf("slope = %v, want ~1", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Fatalf("R2 = %v, want > 0.99", fit.R2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := LinearFit([]float64{3, 3, 3}, []float64{1, 2, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestLinearFitConstantY(t *testing.T) {
	fit, err := LinearFit([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope != 0 || fit.R2 != 1 {
		t.Fatalf("fit = %+v, want slope 0, R2 1", fit)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("GeoMean(2,8) = %v, want 4", got)
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Error("GeoMean with zero should be 0")
	}
	if GeoMean([]float64{-1, 2}) != 0 {
		t.Error("GeoMean with negative should be 0")
	}
}

func TestAsciiScatter(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{0, 1, 2, 3}
	fit, _ := LinearFit(xs, ys)
	out := AsciiScatter(xs, ys, fit, 40, 10)
	if !strings.Contains(out, "*") || !strings.Contains(out, ".") {
		t.Fatalf("scatter missing marks:\n%s", out)
	}
	if AsciiScatter(nil, nil, fit, 40, 10) != "" {
		t.Error("empty input should render nothing")
	}
	if AsciiScatter(xs, ys, fit, 2, 2) != "" {
		t.Error("tiny canvas should render nothing")
	}
}

// Property: R2 is within [0, 1] and Predict passes through the centroid.
func TestQuickLinearFitInvariants(t *testing.T) {
	f := func(pts []struct{ X, Y int16 }) bool {
		if len(pts) < 2 {
			return true
		}
		xs := make([]float64, len(pts))
		ys := make([]float64, len(pts))
		allSameX := true
		for i, p := range pts {
			xs[i] = float64(p.X)
			ys[i] = float64(p.Y)
			if xs[i] != xs[0] {
				allSameX = false
			}
		}
		fit, err := LinearFit(xs, ys)
		if allSameX {
			return err != nil
		}
		if err != nil {
			return false
		}
		if fit.R2 < -1e-9 || fit.R2 > 1+1e-9 {
			return false
		}
		var mx, my float64
		for i := range xs {
			mx += xs[i]
			my += ys[i]
		}
		mx /= float64(len(xs))
		my /= float64(len(ys))
		return math.Abs(fit.Predict(mx)-my) < 1e-6*(1+math.Abs(my))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
