package dse

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/example/cachedse/internal/cache"
	"github.com/example/cachedse/internal/core"
	"github.com/example/cachedse/internal/powerstone"
	"github.com/example/cachedse/internal/trace"
)

// kernelStreams runs a PowerStone kernel once per test binary and caches
// its streams.
var kernelCache sync.Map // name -> *powerstone.Result

func kernelStreams(t *testing.T, name string) *powerstone.Result {
	t.Helper()
	if r, ok := kernelCache.Load(name); ok {
		return r.(*powerstone.Result)
	}
	b := powerstone.Get(name)
	if b == nil {
		t.Fatalf("unknown PowerStone kernel %q", name)
	}
	r, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	kernelCache.Store(name, r)
	return r
}

// mergeStreams interleaves the split streams proportionally — a
// deterministic stand-in for the original fetch/data arrival order, good
// enough to exercise split topologies.
func mergeStreams(instr, data *trace.Trace) *trace.Trace {
	ni, nd := instr.Len(), data.Len()
	out := trace.New(ni + nd)
	i, d := 0, 0
	for i < ni || d < nd {
		if d < nd && (i >= ni || d*ni <= i*nd) {
			out.Append(data.Refs[d])
			d++
		} else {
			out.Append(instr.Refs[i])
			i++
		}
	}
	return out
}

// TestCrossCheckPoliciesPowerStone is the estimator's oracle suite: on
// every PowerStone kernel, the analytical FIFO/Random/PLRU profiles must
// agree exactly with the cache simulator, cell for cell, on both the
// instruction and the data stream. Tolerance is zero — the one-pass
// estimator replicates the simulator's replacement semantics bit for bit.
func TestCrossCheckPoliciesPowerStone(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every PowerStone kernel")
	}
	const maxDepth, maxAssoc = 16, 4
	policies := []core.Policy{core.PolicyFIFO, core.PolicyRandom, core.PolicyPLRU}
	for _, name := range powerstone.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			res := kernelStreams(t, name)
			for _, stream := range []*trace.Trace{res.Instr, res.Data} {
				for _, pol := range policies {
					r, err := core.Explore(context.Background(), stream,
						core.Options{MaxDepth: maxDepth, Policy: pol, MaxAssoc: maxAssoc})
					if err != nil {
						t.Fatal(err)
					}
					for _, l := range r.Levels {
						for a := 1; a < len(l.MissByAssoc); a++ {
							cfg := cache.Config{Depth: l.Depth, Assoc: a, Repl: replOf(pol)}
							sim, err := cache.Simulate(cfg, stream)
							if err != nil {
								t.Fatal(err)
							}
							if l.MissByAssoc[a] != sim.Misses {
								t.Errorf("%s %s D=%d A=%d: analytical %d, simulated %d",
									name, pol, l.Depth, a, l.MissByAssoc[a], sim.Misses)
							}
						}
					}
				}
			}
		})
	}
}

// spaceFIFOPLRU is the acceptance-criteria space: joint split L1I/L1D +
// shared L2 with FIFO and PLRU alongside LRU.
func spaceFIFOPLRU() core.Space {
	return core.Space{
		Topology: core.TopoSplitL2,
		L1: core.LevelSpace{
			MaxDepth: 32, MaxAssoc: 4,
			Policies: []core.Policy{core.PolicyLRU, core.PolicyFIFO, core.PolicyPLRU},
		},
		L2: core.LevelSpace{
			MaxDepth: 256, MaxAssoc: 4,
			Policies: []core.Policy{core.PolicyLRU, core.PolicyFIFO, core.PolicyPLRU},
		},
	}
}

// TestExploreSpaceJointFrontStableAndSound covers three acceptance
// criteria at once on a joint L1I/L1D+L2 exploration with FIFO and PLRU:
// the front is bit-stable across runs, every point is non-dominated, and
// every point's miss count matches a full hierarchy simulation exactly.
func TestExploreSpaceJointFrontStableAndSound(t *testing.T) {
	res := kernelStreams(t, "crc")
	tr := mergeStreams(res.Instr, res.Data)
	ctx := context.Background()
	front, err := ExploreSpace(ctx, tr, spaceFIFOPLRU(), SpaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if front.Len() == 0 {
		t.Fatal("empty Pareto front")
	}

	again, err := ExploreSpace(ctx, tr, spaceFIFOPLRU(), SpaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(front.Points(), again.Points()) {
		t.Error("Pareto front is not bit-stable across runs")
	}
	if !reflect.DeepEqual(front.Stats, again.Stats) {
		t.Errorf("prune stats differ across runs: %+v vs %+v", front.Stats, again.Stats)
	}

	pts := front.Points()
	for i, p := range pts {
		for j, q := range pts {
			if i != j && p.Dominates(q) {
				t.Fatalf("emitted point %s dominates emitted point %s", p.Key(), q.Key())
			}
		}
	}

	// Certify miss counts against the simulator: replay the exact
	// hierarchy of each point. Locked tolerance: zero.
	instr, data := tr.Split()
	for _, p := range pts {
		if len(p.Levels) != 3 {
			t.Fatalf("split+l2 point has %d levels: %s", len(p.Levels), p.Key())
		}
		cfgOf := func(lc core.LevelConfig) cache.Config {
			return cache.Config{Depth: lc.Depth, Assoc: lc.Assoc, LineWords: lc.LineWords, Repl: replOf(lc.Policy)}
		}
		filtered, err := FilterThroughSplitL1(tr, cfgOf(p.Levels[0]), cfgOf(p.Levels[1]))
		if err != nil {
			t.Fatal(err)
		}
		l2res, err := cache.Simulate(cfgOf(p.Levels[2]), filtered)
		if err != nil {
			t.Fatal(err)
		}
		if p.Misses != l2res.TotalMisses() {
			t.Errorf("point %s: analytical misses %d, simulated %d",
				p.Key(), p.Misses, l2res.TotalMisses())
		}
	}
	_ = instr
	_ = data
}

// TestExploreSpaceDefaultPruneRate asserts the α-threshold/A_zero cuts
// skip at least 30% of the candidate cells on the default space — the
// analytical payoff the design-space layer exists for.
func TestExploreSpaceDefaultPruneRate(t *testing.T) {
	res := kernelStreams(t, "crc")
	tr := mergeStreams(res.Instr, res.Data)
	front, err := ExploreSpace(context.Background(), tr, core.DefaultSpace(), SpaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := front.Stats
	if s.Candidates == 0 || s.Evaluated+s.Pruned() != s.Candidates {
		t.Fatalf("prune tally does not partition the grid: %+v", s)
	}
	if rate := s.Rate(); rate < 0.30 {
		t.Errorf("prune rate %.2f < 0.30 on the default space (%+v)", rate, s)
	} else {
		t.Logf("default space: %d candidates, %d evaluated, prune rate %.2f",
			s.Candidates, s.Evaluated, rate)
	}
}

// TestExploreSpaceUnifiedTechnologies checks the technology axis: on an
// identical geometry, the NVM-hybrid variant must trade area against
// energy rather than silently duplicate SRAM points.
func TestExploreSpaceUnifiedTechnologies(t *testing.T) {
	res := kernelStreams(t, "bcnt")
	space := core.Space{
		Topology: core.TopoUnified,
		L1: core.LevelSpace{
			MaxDepth: 32, MaxAssoc: 4,
			Policies:     []core.Policy{core.PolicyLRU, core.PolicyFIFO},
			Technologies: []core.Technology{core.TechSRAM, core.TechNVMHybrid},
		},
	}
	front, err := ExploreSpace(context.Background(), res.Data, space, SpaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var sawSRAM, sawNVM bool
	for _, p := range front.Points() {
		if len(p.Levels) != 1 {
			t.Fatalf("unified point has %d levels", len(p.Levels))
		}
		switch p.Levels[0].Technology {
		case core.TechSRAM:
			sawSRAM = true
		case core.TechNVMHybrid:
			sawNVM = true
		}
	}
	if !sawSRAM || !sawNVM {
		t.Errorf("front covers technologies sram=%v nvm=%v, want both on the front", sawSRAM, sawNVM)
	}
}

// TestExploreSpaceRejectsInvalid pins validation errors.
func TestExploreSpaceRejectsInvalid(t *testing.T) {
	tr := trace.New(0)
	if _, err := ExploreSpace(context.Background(), tr, core.Space{L1: core.LevelSpace{MaxDepth: 3}}, SpaceOptions{}); err == nil {
		t.Error("ExploreSpace accepted MaxDepth 3")
	}
}

// TestFrontTableRendering smoke-checks the shared renderer.
func TestFrontTableRendering(t *testing.T) {
	res := kernelStreams(t, "bcnt")
	space := core.Space{Topology: core.TopoUnified, L1: core.LevelSpace{MaxDepth: 16, MaxAssoc: 2}}
	front, err := ExploreSpace(context.Background(), res.Data, space, SpaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tab := FrontTable(front)
	out := tab.Render()
	if !strings.Contains(out, "Pareto front") || !strings.Contains(out, "Misses") {
		t.Errorf("front table missing headers:\n%s", out)
	}
	if got := len(strings.Split(strings.TrimSpace(tab.CSV()), "\n")); got != front.Len()+1 {
		t.Errorf("CSV rows = %d, want %d points + header", got, front.Len())
	}
}

// TestExploreSpaceExhaustiveAgrees prices the cuts' correctness: the
// exhaustive evaluation of the same space must evaluate every candidate
// cell (no pruning), and the pruned front must still reach the same
// best miss count — the cuts only drop dominated or near-floor cells.
func TestExploreSpaceExhaustiveAgrees(t *testing.T) {
	res := kernelStreams(t, "crc")
	sp := core.Space{L1: core.LevelSpace{
		MaxDepth: 16, MaxAssoc: 8,
		Policies: []core.Policy{core.PolicyLRU, core.PolicyFIFO, core.PolicyPLRU},
	}}
	pruned, err := ExploreSpace(context.Background(), res.Data, sp, SpaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := ExploreSpace(context.Background(), res.Data, sp, SpaceOptions{Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	if s := full.Stats; s.Evaluated != s.Candidates || s.Pruned() != 0 {
		t.Errorf("exhaustive run still pruned: %+v", s)
	}
	if full.Stats.Candidates != pruned.Stats.Candidates {
		t.Errorf("candidate grids differ: exhaustive %d, pruned %d",
			full.Stats.Candidates, pruned.Stats.Candidates)
	}
	if pruned.Stats.Pruned() == 0 {
		t.Error("pruned run cut nothing, benchmark comparison is vacuous")
	}
	pp, fp := pruned.Points(), full.Points()
	if len(pp) == 0 || len(fp) == 0 {
		t.Fatalf("empty front: pruned %d, exhaustive %d", len(pp), len(fp))
	}
	if pp[0].Misses != fp[0].Misses {
		t.Errorf("best miss count differs: pruned %d, exhaustive %d",
			pp[0].Misses, fp[0].Misses)
	}
}
