package dse

import (
	"context"
	"fmt"

	"github.com/example/cachedse/internal/cache"
	"github.com/example/cachedse/internal/cacti"
	"github.com/example/cachedse/internal/core"
	"github.com/example/cachedse/internal/trace"
)

// Energy-aware selection: the paper's introduction frames cache tuning as
// trading misses against "silicon area, clock latency, or energy". This
// harness combines the analytical explorer (exact miss counts for every
// configuration, no simulation) with the CACTI-flavoured cost model to
// pick, among all configurations meeting the miss budget, the one with the
// least total memory-system energy.

// Choice is the selected configuration with its predicted costs.
type Choice struct {
	LineWords int
	Instance  core.Instance
	// Misses is cold + non-cold misses at this configuration.
	Misses int
	// EnergyPJ is the total dynamic energy over the trace (cache accesses
	// + refills + off-chip penalty per miss).
	EnergyPJ float64
	// Estimate is the per-access cost model output.
	Estimate cacti.Estimate
}

// EnergyAware returns the minimum-energy configuration meeting the
// non-cold miss budget k within capWords of storage, across the given line
// sizes and every explored depth. Writeback traffic is not modelled (the
// analytical method does not count dirty evictions); the refill and miss
// penalty terms dominate for the embedded workloads this targets.
func EnergyAware(t *trace.Trace, k int, lineWords []int, capWords int, params cacti.Params, missPenaltyPJ float64) (Choice, error) {
	lines, err := core.LineSizes(context.Background(), t, core.Options{}, lineWords)
	if err != nil {
		return Choice{}, err
	}
	n := t.Len()
	best := Choice{}
	found := false
	for _, lr := range lines {
		for _, l := range lr.Result.Levels {
			a := l.MinAssoc(k)
			cfg := cache.Config{Depth: l.Depth, Assoc: a, LineWords: lr.LineWords}
			if cfg.SizeWords() > capWords {
				continue
			}
			est, err := cacti.Model(cfg, params)
			if err != nil {
				return Choice{}, err
			}
			misses := lr.Cold + l.Misses(a)
			energy := cacti.AccessEnergy(est, n, misses, 0, missPenaltyPJ)
			if !found || energy < best.EnergyPJ {
				best = Choice{
					LineWords: lr.LineWords,
					Instance:  core.Instance{Depth: l.Depth, Assoc: a},
					Misses:    misses,
					EnergyPJ:  energy,
					Estimate:  est,
				}
				found = true
			}
		}
	}
	if !found {
		return Choice{}, fmt.Errorf("dse: no configuration meets K=%d within %d words", k, capWords)
	}
	return best, nil
}
