package dse

import (
	"context"
	"testing"

	"github.com/example/cachedse/internal/cache"
	"github.com/example/cachedse/internal/cacti"
	"github.com/example/cachedse/internal/core"
	"github.com/example/cachedse/internal/trace"
	"github.com/example/cachedse/internal/tracegen"
)

func TestEnergyAwareMeetsBudget(t *testing.T) {
	tr := testTrace()
	st := trace.ComputeStats(tr)
	k := st.MaxMisses / 10
	choice, err := EnergyAware(tr, k, []int{1, 2, 4}, 4096, cacti.DefaultParams(), 2000)
	if err != nil {
		t.Fatal(err)
	}
	if choice.EnergyPJ <= 0 {
		t.Fatal("non-positive energy")
	}
	// The chosen instance must honour the budget under simulation at its
	// own line size (simulated against the original word trace).
	cfg := cache.Config{
		Depth:     choice.Instance.Depth,
		Assoc:     choice.Instance.Assoc,
		LineWords: choice.LineWords,
	}
	res, err := cache.Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses > k {
		t.Fatalf("chosen %v @%d-word lines misses %d > K=%d", choice.Instance, choice.LineWords, res.Misses, k)
	}
	if res.Misses+res.ColdMisses != choice.Misses {
		t.Fatalf("predicted total misses %d != simulated %d", choice.Misses, res.Misses+res.ColdMisses)
	}
}

func TestEnergyAwareIsMinimal(t *testing.T) {
	// Brute-force the same candidate set and confirm the choice is the
	// energy argmin.
	tr := testTrace()
	st := trace.ComputeStats(tr)
	k := st.MaxMisses / 4
	lineWords := []int{1, 2}
	const capWords = 2048
	params := cacti.DefaultParams()
	const penalty = 2000.0

	choice, err := EnergyAware(tr, k, lineWords, capWords, params, penalty)
	if err != nil {
		t.Fatal(err)
	}
	lines, err := core.LineSizes(context.Background(), tr, core.Options{}, lineWords)
	if err != nil {
		t.Fatal(err)
	}
	for _, lr := range lines {
		for _, l := range lr.Result.Levels {
			a := l.MinAssoc(k)
			cfg := cache.Config{Depth: l.Depth, Assoc: a, LineWords: lr.LineWords}
			if cfg.SizeWords() > capWords {
				continue
			}
			est, err := cacti.Model(cfg, params)
			if err != nil {
				t.Fatal(err)
			}
			energy := cacti.AccessEnergy(est, tr.Len(), lr.Cold+l.Misses(a), 0, penalty)
			if energy < choice.EnergyPJ {
				t.Fatalf("found cheaper candidate D=%d A=%d L=%d (%.0f pJ < %.0f pJ)",
					l.Depth, a, lr.LineWords, energy, choice.EnergyPJ)
			}
		}
	}
}

func TestEnergyAwareNoFit(t *testing.T) {
	tr := testTrace()
	if _, err := EnergyAware(tr, 0, []int{1}, 1, cacti.DefaultParams(), 2000); err == nil {
		t.Fatal("capacity 1 word should fit nothing at K=0")
	}
}

func TestEnergyAwarePenaltyShiftsChoice(t *testing.T) {
	// With a huge miss penalty the selector should accept a bigger, more
	// power-hungry cache to buy misses down; with a tiny penalty it should
	// prefer the smallest cache meeting the budget.
	rng := tracegen.Loop(0, 96, 60) // 96-word loop
	st := trace.ComputeStats(rng)
	k := st.MaxMisses // budget never binds; energy decides alone
	cheap, err := EnergyAware(rng, k, []int{1}, 4096, cacti.DefaultParams(), 0.001)
	if err != nil {
		t.Fatal(err)
	}
	dear, err := EnergyAware(rng, k, []int{1}, 4096, cacti.DefaultParams(), 1e7)
	if err != nil {
		t.Fatal(err)
	}
	if dear.Misses > cheap.Misses {
		t.Fatalf("high penalty picked more misses (%d) than low penalty (%d)", dear.Misses, cheap.Misses)
	}
	if cheap.Instance.SizeWords()*1 > dear.Instance.SizeWords()*dearLineOr1(dear) {
		t.Fatalf("low penalty picked bigger cache (%v) than high penalty (%v)", cheap.Instance, dear.Instance)
	}
}

func dearLineOr1(c Choice) int {
	if c.LineWords == 0 {
		return 1
	}
	return c.LineWords
}
