package dse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/example/cachedse/internal/cache"
	"github.com/example/cachedse/internal/core"
	"github.com/example/cachedse/internal/trace"
)

func mixedTrace(seed int64, n int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := trace.New(0)
	for i := 0; i < n; i++ {
		k := trace.DataRead
		if rng.Intn(4) == 0 {
			k = trace.DataWrite
		}
		tr.Append(trace.Ref{Addr: uint32(rng.Intn(200)), Kind: k})
	}
	return tr
}

func TestFilterThroughL1Basic(t *testing.T) {
	// All hits after warmup: the filtered stream is just the cold fills.
	tr := trace.FromAddrs(trace.DataRead, []uint32{1, 2, 1, 2, 1, 2})
	filtered, err := FilterThroughL1(tr, cache.Config{Depth: 4, Assoc: 1})
	if err != nil {
		t.Fatal(err)
	}
	if filtered.Len() != 2 {
		t.Fatalf("filtered length %d, want 2 cold fills", filtered.Len())
	}
}

func TestFilterThroughL1Writebacks(t *testing.T) {
	tr := trace.New(0)
	tr.Append(trace.Ref{Addr: 0, Kind: trace.DataWrite})
	tr.Append(trace.Ref{Addr: 8, Kind: trace.DataRead}) // evicts dirty 0
	filtered, err := FilterThroughL1(tr, cache.Config{Depth: 1, Assoc: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Stream: read 0 (miss), write 0 (victim writeback), read 8 (miss).
	if filtered.Len() != 3 {
		t.Fatalf("filtered = %+v, want 3 refs", filtered.Refs)
	}
	if filtered.Refs[1] != (trace.Ref{Addr: 0, Kind: trace.DataWrite}) {
		t.Fatalf("writeback ref = %+v", filtered.Refs[1])
	}
}

func TestFilterThroughL1BadConfig(t *testing.T) {
	if _, err := FilterThroughL1(trace.New(0), cache.Config{Depth: 3, Assoc: 1}); err == nil {
		t.Fatal("bad L1 accepted")
	}
}

// The load-bearing equivalence: simulating any L2 on the filtered stream
// reproduces the L2 of a real two-level hierarchy exactly.
func TestFilteredStreamMatchesHierarchy(t *testing.T) {
	tr := mixedTrace(5, 4000)
	l1 := cache.Config{Depth: 8, Assoc: 1}
	filtered, err := FilterThroughL1(tr, l1)
	if err != nil {
		t.Fatal(err)
	}
	for _, l2 := range []cache.Config{
		{Depth: 32, Assoc: 1},
		{Depth: 64, Assoc: 2},
		{Depth: 256, Assoc: 4},
	} {
		h, err := cache.NewHierarchy(l1, l2)
		if err != nil {
			t.Fatal(err)
		}
		h.Run(tr)
		standalone, err := cache.Simulate(l2, filtered)
		if err != nil {
			t.Fatal(err)
		}
		if h.L2.Results() != standalone {
			t.Fatalf("L2 %v: hierarchy %+v != filtered standalone %+v",
				l2, h.L2.Results(), standalone)
		}
	}
}

// And therefore the analytical exploration of the filtered stream counts
// real hierarchy L2 misses exactly.
func TestExploreL2MatchesHierarchy(t *testing.T) {
	tr := mixedTrace(7, 3000)
	l1 := cache.Config{Depth: 16, Assoc: 1}
	r, filtered, err := ExploreL2(tr, l1, core.Options{MaxDepth: 128})
	if err != nil {
		t.Fatal(err)
	}
	if filtered.Len() == 0 {
		t.Fatal("empty filtered stream")
	}
	for _, depth := range []int{1, 8, 32, 128} {
		for _, assoc := range []int{1, 2, 4} {
			h, err := cache.NewHierarchy(l1, cache.Config{Depth: depth, Assoc: assoc})
			if err != nil {
				t.Fatal(err)
			}
			h.Run(tr)
			if got, want := r.Level(depth).Misses(assoc), h.L2.Results().Misses; got != want {
				t.Errorf("L2 D=%d A=%d: analytical %d != hierarchy %d", depth, assoc, got, want)
			}
		}
	}
}

func TestExploreL2InstructionKindPreserved(t *testing.T) {
	tr := trace.FromAddrs(trace.Instr, []uint32{0, 64, 0, 64})
	filtered, err := FilterThroughL1(tr, cache.Config{Depth: 1, Assoc: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range filtered.Refs {
		if r.Kind != trace.Instr {
			t.Fatalf("instruction miss became %v", r.Kind)
		}
	}
}

// Property: filtered stream length equals L1 total misses plus L1
// writebacks.
func TestQuickFilterAccounting(t *testing.T) {
	f := func(bs []uint8, depthPow uint8) bool {
		tr := trace.New(0)
		for i, b := range bs {
			k := trace.DataRead
			if i%3 == 0 {
				k = trace.DataWrite
			}
			tr.Append(trace.Ref{Addr: uint32(b % 64), Kind: k})
		}
		cfg := cache.Config{Depth: 1 << (depthPow % 5), Assoc: 1}
		filtered, err := FilterThroughL1(tr, cfg)
		if err != nil {
			return false
		}
		res, err := cache.Simulate(cfg, tr)
		if err != nil {
			return false
		}
		return filtered.Len() == res.TotalMisses()+res.Writebacks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
