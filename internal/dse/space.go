package dse

import (
	"context"
	"fmt"
	"sort"

	"github.com/example/cachedse/internal/cache"
	"github.com/example/cachedse/internal/cacti"
	"github.com/example/cachedse/internal/core"
	"github.com/example/cachedse/internal/onepass"
	"github.com/example/cachedse/internal/report"
	"github.com/example/cachedse/internal/trace"
)

// Design-space evaluation: walk a declarative core.Space — per-level
// depth/associativity/line/policy/technology axes under a hierarchy
// topology — and emit the Pareto front over (misses, energy, area). The
// evaluator is analytical end to end: LRU levels come from the postlude's
// histogram, non-LRU levels from the one-pass estimator, costs from the
// cacti model; the only simulation is the L1 filter replay that derives
// the L2 reference stream, one run per retained L1 pair. The α-threshold
// and A_zero cuts prune the associativity axis before any non-LRU
// evaluation, and core.Front.Stats records how much work they skipped.

// DefaultMissPenaltyPJ is the off-chip access energy charged per
// last-level miss when SpaceOptions leaves the penalty zero. It matches
// the repro harness's energy experiments.
const DefaultMissPenaltyPJ = 2000

// DefaultMaxL1Pairs caps the split-L1 pairs carried into the L2 stage.
const DefaultMaxL1Pairs = 6

// SpaceOptions tunes a design-space evaluation. The zero value is fully
// usable.
type SpaceOptions struct {
	// Eps is the α-threshold slack (core.AlphaThreshold); zero means
	// core.DefaultAlphaEps.
	Eps float64
	// Params is the cost model calibration; the zero value means
	// cacti.DefaultParams(). Technology axes scale it per level.
	Params cacti.Params
	// MissPenaltyPJ is the off-chip energy per last-level miss; zero
	// means DefaultMissPenaltyPJ.
	MissPenaltyPJ float64
	// MaxL1Pairs caps how many Pareto-optimal split-L1 pairs seed the L2
	// stage of a split+l2 topology (each costs one filter replay of the
	// trace). Zero means DefaultMaxL1Pairs; negative keeps every pair on
	// the L1 pair front.
	MaxL1Pairs int
	// Exhaustive disables the A_zero, LRU-plateau and α-threshold cuts,
	// evaluating every candidate cell of every level grid. The cuts only
	// skip dominated or within-eps-of-floor cells, so the fronts agree up
	// to the α slack; it exists so the benchmark harness can price what
	// the cuts save on the identical computation.
	Exhaustive bool
}

func (o SpaceOptions) normalized() SpaceOptions {
	if o.Eps == 0 {
		o.Eps = core.DefaultAlphaEps
	}
	if o.Params.AddressBits == 0 {
		o.Params = cacti.DefaultParams()
	}
	if o.MissPenaltyPJ == 0 {
		o.MissPenaltyPJ = DefaultMissPenaltyPJ
	}
	if o.MaxL1Pairs == 0 {
		o.MaxL1Pairs = DefaultMaxL1Pairs
	}
	return o
}

// levelCand is one miss-evaluated cell of a level's axis grid: a concrete
// (depth, assoc, line, policy) with its cold and non-cold miss counts on
// the level's reference stream.
type levelCand struct {
	depth, assoc, line int
	policy             core.Policy
	cold, nonCold      int
}

func (c levelCand) misses() int    { return c.cold + c.nonCold }
func (c levelCand) sizeWords() int { return c.depth * c.assoc * c.line }

// config renders the candidate as a simulator configuration.
func (c levelCand) config() cache.Config {
	return cache.Config{Depth: c.depth, Assoc: c.assoc, LineWords: c.line, Repl: replOf(c.policy)}
}

// replOf maps the space vocabulary onto the simulator's.
func replOf(p core.Policy) cache.Replacement {
	switch p {
	case core.PolicyFIFO:
		return cache.FIFO
	case core.PolicyRandom:
		return cache.Random
	case core.PolicyPLRU:
		return cache.PLRU
	default:
		return cache.LRU
	}
}

// onepassOf maps the space vocabulary onto the one-pass estimator's.
func onepassOf(p core.Policy) onepass.ReplPolicy {
	switch p {
	case core.PolicyFIFO:
		return onepass.ReplFIFO
	case core.PolicyRandom:
		return onepass.ReplRandom
	case core.PolicyPLRU:
		return onepass.ReplPLRU
	default:
		return onepass.ReplLRU
	}
}

// levelCandidates evaluates one level's axis grid on its reference
// stream. The LRU profile of each (line, depth) is computed analytically
// once; it bounds the associativity axis for every policy (A_zero: LRU
// already reaches zero non-cold misses at no greater cost, so anything
// past it is dominated for any policy; α-threshold: past it the level is
// within eps of its compulsory floor, so the non-LRU axis is cut there).
// LRU itself contributes only its miss-count corners — plateau
// associativities add size for identical misses and are dominated.
// minLine drops line sizes below a floor (an L2 line must cover its L1
// lines). stats tallies the cells skipped by each cut; o.Exhaustive
// disables all three cuts and evaluates the full grid.
func levelCandidates(ctx context.Context, stream *trace.Trace, ls core.LevelSpace, o SpaceOptions, minLine int, stats *core.PruneStats) ([]levelCand, error) {
	var out []levelCand
	for _, line := range ls.LineWords {
		if line < minLine {
			continue
		}
		lrs, err := core.LineSizes(ctx, stream, core.Options{MaxDepth: ls.MaxDepth}, []int{line})
		if err != nil {
			return nil, err
		}
		lr := lrs[0]
		for _, l := range lr.Result.Levels {
			capZero := ls.MaxAssoc
			if l.AZero < capZero {
				capZero = l.AZero
			}
			capAlpha := core.AlphaThreshold(l, ls.MaxAssoc, o.Eps)
			if capAlpha > capZero {
				capAlpha = capZero
			}
			if o.Exhaustive {
				capZero = ls.MaxAssoc
				capAlpha = ls.MaxAssoc
			}
			for _, p := range ls.Policies {
				stats.Candidates += ls.MaxAssoc
				stats.PrunedDominated += ls.MaxAssoc - capZero
				if p == core.PolicyLRU {
					prev := -1
					for a := 1; a <= capZero; a++ {
						m := l.Misses(a)
						if m == prev && !o.Exhaustive {
							stats.PrunedDominated++
							continue
						}
						prev = m
						stats.Evaluated++
						out = append(out, levelCand{
							depth: l.Depth, assoc: a, line: line,
							policy: p, cold: lr.Cold, nonCold: m,
						})
					}
					continue
				}
				stats.PrunedThreshold += capZero - capAlpha
				stats.Evaluated += capAlpha
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				sw, err := onepass.PolicySweep(stream, l.Depth, capAlpha, line, onepassOf(p))
				if err != nil {
					return nil, err
				}
				for a := 1; a <= capAlpha; a++ {
					out = append(out, levelCand{
						depth: l.Depth, assoc: a, line: line,
						policy: p, cold: lr.Cold, nonCold: sw.MissByAssoc[a],
					})
				}
			}
		}
	}
	return out, nil
}

// levelCost prices one level: the cacti estimate under the candidate's
// technology and its dynamic energy for the given traffic (reads pay
// ReadPJ, every miss pays the refill; writeback traffic is not modelled,
// matching EnergyAware).
func levelCost(c levelCand, tech core.Technology, accesses int, base cacti.Params) (area, energy float64, err error) {
	p, err := base.ForTechnology(tech.String())
	if err != nil {
		return 0, 0, err
	}
	est, err := cacti.Model(c.config(), p)
	if err != nil {
		return 0, 0, err
	}
	return est.AreaUM2, cacti.AccessEnergy(est, accesses, c.misses(), 0, 0), nil
}

// levelConfig renders the candidate as a wire/CLI LevelConfig.
func levelConfig(slot string, c levelCand, tech core.Technology) core.LevelConfig {
	return core.LevelConfig{
		Level: slot, Depth: c.depth, Assoc: c.assoc, LineWords: c.line,
		Policy: c.policy, Technology: tech,
	}
}

// ExploreSpace evaluates a design space over the trace and returns its
// Pareto front over (misses to memory, energy, area). The front is
// deterministic — bit-stable across runs — and Front.Stats carries the
// pruning tally of every level stage.
func ExploreSpace(ctx context.Context, t *trace.Trace, space core.Space, o SpaceOptions) (*core.Front, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	space = space.Normalized()
	o = o.normalized()
	front := &core.Front{}
	switch space.Topology {
	case core.TopoUnified:
		cands, err := levelCandidates(ctx, t, space.L1, o, 1, &front.Stats)
		if err != nil {
			return nil, err
		}
		for _, c := range cands {
			for _, tech := range space.L1.Technologies {
				area, energy, err := levelCost(c, tech, t.Len(), o.Params)
				if err != nil {
					return nil, err
				}
				front.Add(core.Point{
					Levels:   []core.LevelConfig{levelConfig("L1", c, tech)},
					Misses:   c.misses(),
					EnergyPJ: energy + float64(c.misses())*o.MissPenaltyPJ,
					AreaUM2:  area,
				})
			}
		}
	case core.TopoSplit, core.TopoSplitL2:
		if err := exploreSplit(ctx, t, space, o, front); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("dse: unknown topology %d", space.Topology)
	}
	front.Points()
	return front, nil
}

// l1Pair is one split-L1 combination retained for the L2 stage.
type l1Pair struct {
	i, d levelCand
}

func (p l1Pair) misses() int    { return p.i.misses() + p.d.misses() }
func (p l1Pair) sizeWords() int { return p.i.sizeWords() + p.d.sizeWords() }
func (p l1Pair) key() string {
	return p.i.config().String() + "/" + p.d.config().String()
}

// exploreSplit handles the two split topologies: candidate L1I and L1D
// grids are evaluated independently on the split streams, paired, and —
// under split+l2 — the Pareto-optimal pairs seed a second-level
// exploration of the filtered stream each pair produces.
func exploreSplit(ctx context.Context, t *trace.Trace, space core.Space, o SpaceOptions, front *core.Front) error {
	instr, data := t.Split()
	candsI, err := levelCandidates(ctx, instr, space.L1, o, 1, &front.Stats)
	if err != nil {
		return err
	}
	candsD, err := levelCandidates(ctx, data, space.L1, o, 1, &front.Stats)
	if err != nil {
		return err
	}

	if space.Topology == core.TopoSplit {
		for _, ci := range candsI {
			for _, cd := range candsD {
				misses := ci.misses() + cd.misses()
				for _, techI := range space.L1.Technologies {
					areaI, energyI, err := levelCost(ci, techI, instr.Len(), o.Params)
					if err != nil {
						return err
					}
					for _, techD := range space.L1.Technologies {
						areaD, energyD, err := levelCost(cd, techD, data.Len(), o.Params)
						if err != nil {
							return err
						}
						front.Add(core.Point{
							Levels: []core.LevelConfig{
								levelConfig("L1I", ci, techI),
								levelConfig("L1D", cd, techD),
							},
							Misses:   misses,
							EnergyPJ: energyI + energyD + float64(misses)*o.MissPenaltyPJ,
							AreaUM2:  areaI + areaD,
						})
					}
				}
			}
		}
		return nil
	}

	// split+l2: the L2 input stream depends on the L1 pair, and each pair
	// costs a filter replay of the trace — so only the (misses, size)
	// Pareto front of pairs goes forward, subsampled to MaxL1Pairs evenly
	// along the miss axis so both the small-and-missy and the
	// big-and-clean ends stay represented.
	pairs := paretoPairs(candsI, candsD)
	if o.MaxL1Pairs > 0 && len(pairs) > o.MaxL1Pairs {
		pairs = subsamplePairs(pairs, o.MaxL1Pairs)
	}
	for _, pr := range pairs {
		if err := ctx.Err(); err != nil {
			return err
		}
		filtered, err := FilterThroughSplitL1(t, pr.i.config(), pr.d.config())
		if err != nil {
			return err
		}
		minLine := pr.i.line
		if pr.d.line > minLine {
			minLine = pr.d.line
		}
		candsL2, err := levelCandidates(ctx, filtered, space.L2, o, minLine, &front.Stats)
		if err != nil {
			return err
		}
		for _, c2 := range candsL2 {
			misses := c2.misses()
			for _, techI := range space.L1.Technologies {
				areaI, energyI, err := levelCost(pr.i, techI, instr.Len(), o.Params)
				if err != nil {
					return err
				}
				for _, techD := range space.L1.Technologies {
					areaD, energyD, err := levelCost(pr.d, techD, data.Len(), o.Params)
					if err != nil {
						return err
					}
					for _, tech2 := range space.L2.Technologies {
						area2, energy2, err := levelCost(c2, tech2, filtered.Len(), o.Params)
						if err != nil {
							return err
						}
						front.Add(core.Point{
							Levels: []core.LevelConfig{
								levelConfig("L1I", pr.i, techI),
								levelConfig("L1D", pr.d, techD),
								levelConfig("L2", c2, tech2),
							},
							Misses:   misses,
							EnergyPJ: energyI + energyD + energy2 + float64(misses)*o.MissPenaltyPJ,
							AreaUM2:  areaI + areaD + area2,
						})
					}
				}
			}
		}
	}
	return nil
}

// paretoPairs crosses the two candidate lists and keeps the pairs on the
// (combined misses, combined size) Pareto front, sorted by misses then
// size then key. Ties on both objectives keep the lexically smallest key.
func paretoPairs(candsI, candsD []levelCand) []l1Pair {
	all := make([]l1Pair, 0, len(candsI)*len(candsD))
	for _, ci := range candsI {
		for _, cd := range candsD {
			all = append(all, l1Pair{i: ci, d: cd})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].misses() != all[j].misses() {
			return all[i].misses() < all[j].misses()
		}
		if all[i].sizeWords() != all[j].sizeWords() {
			return all[i].sizeWords() < all[j].sizeWords()
		}
		return all[i].key() < all[j].key()
	})
	var out []l1Pair
	bestSize := -1
	for _, p := range all {
		if bestSize >= 0 && p.sizeWords() >= bestSize {
			continue
		}
		out = append(out, p)
		bestSize = p.sizeWords()
	}
	return out
}

// subsamplePairs keeps n pairs evenly spaced along the sorted front,
// always including both endpoints.
func subsamplePairs(pairs []l1Pair, n int) []l1Pair {
	if n < 2 {
		return pairs[:1]
	}
	out := make([]l1Pair, 0, n)
	last := len(pairs) - 1
	for k := 0; k < n; k++ {
		idx := k * last / (n - 1)
		if len(out) > 0 && out[len(out)-1] == pairs[idx] {
			continue
		}
		out = append(out, pairs[idx])
	}
	return out
}

// FrontTable renders a Pareto front as the canonical table shared by the
// CLI and the HTTP service: one row per point, sorted by the front's
// deterministic order, with the pruning tally in the title.
func FrontTable(f *core.Front) *report.Table {
	tab := &report.Table{
		Title: fmt.Sprintf("Pareto front: %d points (%d/%d candidates evaluated, %d pruned)",
			f.Len(), f.Stats.Evaluated, f.Stats.Candidates, f.Stats.Pruned()),
		Headers: []string{"Config", "Misses", "Energy (pJ)", "Area (um^2)"},
	}
	for _, p := range f.Points() {
		tab.AddRow(p.Key(), p.Misses, fmt.Sprintf("%.1f", p.EnergyPJ), fmt.Sprintf("%.0f", p.AreaUM2))
	}
	return tab
}
