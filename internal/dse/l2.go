package dse

import (
	"context"
	"fmt"

	"github.com/example/cachedse/internal/cache"
	"github.com/example/cachedse/internal/core"
	"github.com/example/cachedse/internal/trace"
)

// Two-level exploration: the "well-tuned cache hierarchy" the paper's
// introduction motivates, done with one simulation and one analytical
// pass. For a FIXED L1, the reference stream reaching L2 is deterministic:
// L1 misses (as reads) interleaved with L1 dirty-eviction writebacks (as
// writes). Capturing that filtered trace once and handing it to the
// analytical explorer sizes every candidate L2 exactly — the design loop
// over L2 configurations needs no further simulation.

// FilterThroughL1 simulates the trace on an L1 configuration and returns
// the stream of references that reach the next level, in arrival order.
func FilterThroughL1(t *trace.Trace, l1 cache.Config) (*trace.Trace, error) {
	c, err := cache.NewCache(l1)
	if err != nil {
		return nil, err
	}
	out := trace.New(0)
	lineShift := 0
	for lw := l1.LineWords; lw > 1; lw >>= 1 {
		lineShift++
	}
	c.OnEvict = func(lineAddr uint32, dirty bool) {
		if dirty {
			out.Append(trace.Ref{Addr: lineAddr << uint(lineShift), Kind: trace.DataWrite})
		}
	}
	for _, r := range t.Refs {
		if !c.Access(r) {
			// OnEvict fires inside Access, so a miss's victim writeback
			// precedes its refill read in the stream — the order a
			// hierarchy whose write buffer drains ahead of the fill
			// produces, and exactly the order cache.Hierarchy replays.
			out.Append(trace.Ref{Addr: r.Addr, Kind: readKind(r.Kind)})
		}
	}
	return out, nil
}

// FilterThroughSplitL1 simulates the trace on a split first level —
// instruction fetches through l1i, data references through l1d — and
// returns the merged stream reaching the shared second level, in arrival
// order. Each cache's dirty-eviction writeback precedes its refill read,
// exactly as in FilterThroughL1; the two caches' outputs interleave in
// trace order because each reference is fully retired before the next.
func FilterThroughSplitL1(t *trace.Trace, l1i, l1d cache.Config) (*trace.Trace, error) {
	ci, err := cache.NewCache(l1i)
	if err != nil {
		return nil, fmt.Errorf("dse: L1I: %w", err)
	}
	cd, err := cache.NewCache(l1d)
	if err != nil {
		return nil, fmt.Errorf("dse: L1D: %w", err)
	}
	out := trace.New(0)
	evict := func(lineShift uint) func(uint32, bool) {
		return func(lineAddr uint32, dirty bool) {
			if dirty {
				out.Append(trace.Ref{Addr: lineAddr << lineShift, Kind: trace.DataWrite})
			}
		}
	}
	ci.OnEvict = evict(lineShiftOf(l1i))
	cd.OnEvict = evict(lineShiftOf(l1d))
	for _, r := range t.Refs {
		c := cd
		if r.Kind == trace.Instr {
			c = ci
		}
		if !c.Access(r) {
			out.Append(trace.Ref{Addr: r.Addr, Kind: readKind(r.Kind)})
		}
	}
	return out, nil
}

func lineShiftOf(cfg cache.Config) uint {
	var s uint
	for lw := cfg.LineWords; lw > 1; lw >>= 1 {
		s++
	}
	return s
}

// readKind maps the original reference kind to the kind of the refill
// request L2 sees: instruction fetch misses stay instruction fetches, data
// misses become reads (the store data merges in L1 after the fill).
func readKind(k trace.Kind) trace.Kind {
	if k == trace.Instr {
		return trace.Instr
	}
	return trace.DataRead
}

// ExploreL2 sizes the second level: it filters the trace through the given
// L1 and analytically explores the resulting stream, returning the
// filtered stream's exploration (budget semantics: non-cold L2 misses).
func ExploreL2(t *trace.Trace, l1 cache.Config, opts core.Options) (*core.Result, *trace.Trace, error) {
	filtered, err := FilterThroughL1(t, l1)
	if err != nil {
		return nil, nil, err
	}
	r, err := core.Explore(context.Background(), filtered, opts)
	if err != nil {
		return nil, nil, err
	}
	return r, filtered, nil
}
