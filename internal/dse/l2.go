package dse

import (
	"context"
	"github.com/example/cachedse/internal/cache"
	"github.com/example/cachedse/internal/core"
	"github.com/example/cachedse/internal/trace"
)

// Two-level exploration: the "well-tuned cache hierarchy" the paper's
// introduction motivates, done with one simulation and one analytical
// pass. For a FIXED L1, the reference stream reaching L2 is deterministic:
// L1 misses (as reads) interleaved with L1 dirty-eviction writebacks (as
// writes). Capturing that filtered trace once and handing it to the
// analytical explorer sizes every candidate L2 exactly — the design loop
// over L2 configurations needs no further simulation.

// FilterThroughL1 simulates the trace on an L1 configuration and returns
// the stream of references that reach the next level, in arrival order.
func FilterThroughL1(t *trace.Trace, l1 cache.Config) (*trace.Trace, error) {
	c, err := cache.NewCache(l1)
	if err != nil {
		return nil, err
	}
	out := trace.New(0)
	lineShift := 0
	for lw := l1.LineWords; lw > 1; lw >>= 1 {
		lineShift++
	}
	c.OnEvict = func(lineAddr uint32, dirty bool) {
		if dirty {
			out.Append(trace.Ref{Addr: lineAddr << uint(lineShift), Kind: trace.DataWrite})
		}
	}
	for _, r := range t.Refs {
		if !c.Access(r) {
			// OnEvict fires inside Access, so a miss's victim writeback
			// precedes its refill read in the stream — the order a
			// hierarchy whose write buffer drains ahead of the fill
			// produces, and exactly the order cache.Hierarchy replays.
			out.Append(trace.Ref{Addr: r.Addr, Kind: readKind(r.Kind)})
		}
	}
	return out, nil
}

// readKind maps the original reference kind to the kind of the refill
// request L2 sees: instruction fetch misses stay instruction fetches, data
// misses become reads (the store data merges in L1 after the fill).
func readKind(k trace.Kind) trace.Kind {
	if k == trace.Instr {
		return trace.Instr
	}
	return trace.DataRead
}

// ExploreL2 sizes the second level: it filters the trace through the given
// L1 and analytically explores the resulting stream, returning the
// filtered stream's exploration (budget semantics: non-cold L2 misses).
func ExploreL2(t *trace.Trace, l1 cache.Config, opts core.Options) (*core.Result, *trace.Trace, error) {
	filtered, err := FilterThroughL1(t, l1)
	if err != nil {
		return nil, nil, err
	}
	r, err := core.Explore(context.Background(), filtered, opts)
	if err != nil {
		return nil, nil, err
	}
	return r, filtered, nil
}
