package dse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/example/cachedse/internal/core"
	"github.com/example/cachedse/internal/trace"
	"github.com/example/cachedse/internal/tracegen"
)

func testTrace() *trace.Trace {
	rng := rand.New(rand.NewSource(21))
	return tracegen.Mixed(
		tracegen.Loop(0x40, 24, 30),
		tracegen.Uniform(rng, 0x200, 40, 720),
	)
}

func TestStrategiesAgree(t *testing.T) {
	tr := testTrace()
	st := trace.ComputeStats(tr)
	for _, k := range []int{0, st.MaxMisses / 10, st.MaxMisses / 4} {
		an, err := Analytical(tr, k, core.Options{MaxDepth: 64})
		if err != nil {
			t.Fatal(err)
		}
		ex, err := Exhaustive(tr, k, 64, 64)
		if err != nil {
			t.Fatal(err)
		}
		it, err := Iterative(tr, k, 64, 64)
		if err != nil {
			t.Fatal(err)
		}
		if len(an.Instances) != len(ex.Instances) || len(an.Instances) != len(it.Instances) {
			t.Fatalf("k=%d: instance counts differ: %d/%d/%d", k, len(an.Instances), len(ex.Instances), len(it.Instances))
		}
		for i := range an.Instances {
			if an.Instances[i] != ex.Instances[i] {
				t.Errorf("k=%d depth %d: analytical %v != exhaustive %v", k, an.Instances[i].Depth, an.Instances[i], ex.Instances[i])
			}
			if an.Instances[i] != it.Instances[i] {
				t.Errorf("k=%d depth %d: analytical %v != iterative %v", k, an.Instances[i].Depth, an.Instances[i], it.Instances[i])
			}
		}
	}
}

func TestSimulationCounts(t *testing.T) {
	tr := testTrace()
	an, err := Analytical(tr, 0, core.Options{MaxDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	if an.Simulations != 0 {
		t.Fatalf("analytical performed %d simulations, want 0", an.Simulations)
	}
	ex, err := Exhaustive(tr, 0, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	// 7 depths x 16 associativities.
	if ex.Simulations != 7*16 {
		t.Fatalf("exhaustive simulations = %d, want %d", ex.Simulations, 7*16)
	}
	it, err := Iterative(tr, 0, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	if it.Simulations >= ex.Simulations {
		t.Fatalf("iterative (%d sims) should beat exhaustive (%d sims)", it.Simulations, ex.Simulations)
	}
	if it.Simulations == 0 {
		t.Fatal("iterative must simulate at least once")
	}
}

func TestExhaustiveUnreachableBudget(t *testing.T) {
	// With maxAssoc 1 and a conflicting trace, budget 0 is unreachable at
	// depth 1; the strategy reports the bound rather than failing.
	tr := trace.FromAddrs(trace.DataRead, []uint32{1, 2, 1, 2, 1, 2})
	ex, err := Exhaustive(tr, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Instances) != 1 || ex.Instances[0].Assoc != 1 {
		t.Fatalf("instances = %v", ex.Instances)
	}
	it, err := Iterative(tr, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if it.Instances[0] != ex.Instances[0] {
		t.Fatalf("iterative %v != exhaustive %v under unreachable budget", it.Instances[0], ex.Instances[0])
	}
}

func TestGridValidation(t *testing.T) {
	tr := testTrace()
	if _, err := Exhaustive(tr, 0, 3, 4); err == nil {
		t.Error("Exhaustive accepted non-power-of-two depth")
	}
	if _, err := Exhaustive(tr, 0, 4, 0); err == nil {
		t.Error("Exhaustive accepted maxAssoc 0")
	}
	if _, err := Iterative(tr, 0, 5, 4); err == nil {
		t.Error("Iterative accepted non-power-of-two depth")
	}
	if _, err := Iterative(tr, 0, 4, -1); err == nil {
		t.Error("Iterative accepted negative maxAssoc")
	}
}

func TestVerifyAcceptsAnalyticalOutput(t *testing.T) {
	tr := testTrace()
	st := trace.ComputeStats(tr)
	k := st.MaxMisses / 20
	an, err := Analytical(tr, k, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(tr, an.Instances, k); err != nil {
		t.Fatalf("Verify rejected analytical instances: %v", err)
	}
}

func TestVerifyRejectsBadInstance(t *testing.T) {
	tr := trace.FromAddrs(trace.DataRead, []uint32{1, 2, 1, 2, 1, 2})
	// Depth 1, assoc 1 misses 4 times; budget 0 must be rejected.
	err := Verify(tr, []core.Instance{{Depth: 1, Assoc: 1}}, 0)
	if err == nil {
		t.Fatal("Verify accepted an instance violating the budget")
	}
}

func TestVerifyPropagatesConfigError(t *testing.T) {
	tr := testTrace()
	if err := Verify(tr, []core.Instance{{Depth: 3, Assoc: 1}}, 100); err == nil {
		t.Fatal("Verify accepted invalid depth")
	}
}

// Property: on random traces all three strategies return identical
// instances whenever the grid bounds cover the analytical answer.
func TestQuickStrategiesAgree(t *testing.T) {
	f := func(bs []uint8, kRaw uint8) bool {
		if len(bs) == 0 {
			return true
		}
		tr := trace.New(len(bs))
		for _, b := range bs {
			tr.Append(trace.Ref{Addr: uint32(b % 32), Kind: trace.DataRead})
		}
		st := trace.ComputeStats(tr)
		k := int(kRaw) % (st.MaxMisses + 1)
		an, err := Analytical(tr, k, core.Options{MaxDepth: 32})
		if err != nil {
			return false
		}
		ex, err := Exhaustive(tr, k, 32, 32)
		if err != nil {
			return false
		}
		it, err := Iterative(tr, k, 32, 32)
		if err != nil {
			return false
		}
		for i := range an.Instances {
			if an.Instances[i] != ex.Instances[i] || an.Instances[i] != it.Instances[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
