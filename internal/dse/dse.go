// Package dse hosts the design-space exploration strategies the paper
// contrasts in Figure 1: the traditional design-simulate-analyze loop —
// either exhaustive simulation of every configuration or an iterative
// tuning heuristic — and the proposed analytical approach, which computes
// the optimal configurations directly from the trace.
//
// All strategies answer the same question: for each power-of-two depth D up
// to a limit, what is the minimum associativity A such that a D×A LRU cache
// incurs at most K non-cold misses on the trace? They must agree on the
// answer; they differ — dramatically — in how many trace simulations they
// spend getting it, which the Outcome records.
package dse

import (
	"context"
	"fmt"
	"time"

	"github.com/example/cachedse/internal/cache"
	"github.com/example/cachedse/internal/core"
	"github.com/example/cachedse/internal/report"
	"github.com/example/cachedse/internal/trace"
)

// Outcome is the result of one exploration run.
type Outcome struct {
	// Instances holds one (D, A) pair per explored depth, smallest depth
	// first — the paper's "set of optimal cache instances".
	Instances []core.Instance
	// Simulations counts full-trace cache simulations performed; the
	// analytical strategy performs none.
	Simulations int
	// Elapsed is the wall-clock time of the exploration.
	Elapsed time.Duration
}

// Analytical runs the paper's approach (Figure 1b): prelude + postlude,
// no simulation.
func Analytical(t *trace.Trace, k int, opts core.Options) (Outcome, error) {
	return AnalyticalContext(context.Background(), t, k, opts)
}

// AnalyticalContext is Analytical with cancellation threaded into the
// prelude and postlude.
func AnalyticalContext(ctx context.Context, t *trace.Trace, k int, opts core.Options) (Outcome, error) {
	start := time.Now()
	r, err := core.Explore(ctx, t, opts)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{
		Instances: r.OptimalSet(k),
		Elapsed:   time.Since(start),
	}, nil
}

// Exhaustive simulates every configuration of the (depth, associativity)
// grid — the brute-force corner of the traditional approach — and picks the
// minimum associativity per depth meeting the budget. maxAssoc bounds the
// grid; if no associativity within the bound meets the budget at some
// depth, the returned instance carries the smallest associativity whose
// miss count is minimal (i.e. maxAssoc, by LRU monotonicity).
func Exhaustive(t *trace.Trace, k, maxDepth, maxAssoc int) (Outcome, error) {
	return ExhaustiveContext(context.Background(), t, k, maxDepth, maxAssoc)
}

// ExhaustiveContext is Exhaustive with cancellation checked between
// simulations, the unit of work of the traditional loop.
func ExhaustiveContext(ctx context.Context, t *trace.Trace, k, maxDepth, maxAssoc int) (Outcome, error) {
	if err := checkGrid(maxDepth, maxAssoc); err != nil {
		return Outcome{}, err
	}
	start := time.Now()
	var out Outcome
	for d := 1; d <= maxDepth; d *= 2 {
		best := maxAssoc
		for a := 1; a <= maxAssoc; a++ {
			if err := ctx.Err(); err != nil {
				return Outcome{}, err
			}
			res, err := cache.Simulate(cache.Config{Depth: d, Assoc: a}, t)
			if err != nil {
				return Outcome{}, err
			}
			out.Simulations++
			if res.Misses <= k && a < best {
				best = a
			}
		}
		out.Instances = append(out.Instances, core.Instance{Depth: d, Assoc: best})
	}
	out.Elapsed = time.Since(start)
	return out, nil
}

// Iterative is the bootstrap-and-tune heuristic of Figure 1(a): per depth
// it starts from an arbitrary associativity and homes in on the boundary by
// bisection, re-simulating after every adjustment. It finds the same
// configurations as Exhaustive in O(log maxAssoc) simulations per depth —
// faster than brute force, but still simulation-bound, which is the gap the
// analytical approach removes.
func Iterative(t *trace.Trace, k, maxDepth, maxAssoc int) (Outcome, error) {
	return IterativeContext(context.Background(), t, k, maxDepth, maxAssoc)
}

// IterativeContext is Iterative with cancellation checked between
// simulations.
func IterativeContext(ctx context.Context, t *trace.Trace, k, maxDepth, maxAssoc int) (Outcome, error) {
	if err := checkGrid(maxDepth, maxAssoc); err != nil {
		return Outcome{}, err
	}
	start := time.Now()
	var out Outcome
	for d := 1; d <= maxDepth; d *= 2 {
		if err := ctx.Err(); err != nil {
			return Outcome{}, err
		}
		lo, hi := 1, maxAssoc
		// Invariant: every a >= hi meets the budget OR hi == maxAssoc;
		// establish by simulating the bounds first, as a designer would.
		res, err := cache.Simulate(cache.Config{Depth: d, Assoc: maxAssoc}, t)
		if err != nil {
			return Outcome{}, err
		}
		out.Simulations++
		if res.Misses > k {
			// Budget unreachable within the grid; report the bound.
			out.Instances = append(out.Instances, core.Instance{Depth: d, Assoc: maxAssoc})
			continue
		}
		for lo < hi {
			if err := ctx.Err(); err != nil {
				return Outcome{}, err
			}
			mid := (lo + hi) / 2
			res, err := cache.Simulate(cache.Config{Depth: d, Assoc: mid}, t)
			if err != nil {
				return Outcome{}, err
			}
			out.Simulations++
			if res.Misses <= k {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		out.Instances = append(out.Instances, core.Instance{Depth: d, Assoc: lo})
	}
	out.Elapsed = time.Since(start)
	return out, nil
}

func checkGrid(maxDepth, maxAssoc int) error {
	if maxDepth < 1 || maxDepth&(maxDepth-1) != 0 {
		return fmt.Errorf("dse: maxDepth %d is not a power of two >= 1", maxDepth)
	}
	if maxAssoc < 1 {
		return fmt.Errorf("dse: maxAssoc %d < 1", maxAssoc)
	}
	return nil
}

// Verify simulates each instance and reports the first one whose non-cold
// miss count exceeds the budget, or nil if all meet it. It closes the
// Figure 1 loop for the analytical strategy: designers can certify the
// emitted set with one simulation per instance.
func Verify(t *trace.Trace, instances []core.Instance, k int) error {
	return VerifyContext(context.Background(), t, instances, k)
}

// VerifyContext is Verify with cancellation checked between the per-
// instance simulations.
func VerifyContext(ctx context.Context, t *trace.Trace, instances []core.Instance, k int) error {
	for _, ins := range instances {
		if err := ctx.Err(); err != nil {
			return err
		}
		res, err := cache.Simulate(cache.Config{Depth: ins.Depth, Assoc: ins.Assoc}, t)
		if err != nil {
			return err
		}
		if res.Misses > k {
			return fmt.Errorf("dse: instance %v misses %d > budget %d", ins, res.Misses, k)
		}
	}
	return nil
}

// InstanceTable renders the exploration's answer for miss budget k as the
// canonical instance table: one row per emitted (D, A) with size and
// analytical miss count. It is shared by the CLI and the HTTP service so
// both produce byte-identical output for the same trace and budget.
func InstanceTable(r *core.Result, k, maxMisses int, pareto bool) ([]core.Instance, *report.Table) {
	instances := r.OptimalSet(k)
	if pareto {
		instances = r.ParetoSet(k)
	}
	tab := &report.Table{
		Title:   fmt.Sprintf("Optimal cache instances for K=%d (max misses %d)", k, maxMisses),
		Headers: []string{"Depth D", "Assoc A", "Size (words)", "Misses"},
	}
	for _, ins := range instances {
		tab.AddRow(ins.Depth, ins.Assoc, ins.SizeWords(), r.Level(ins.Depth).Misses(ins.Assoc))
	}
	return instances, tab
}
