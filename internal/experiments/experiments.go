// Package experiments reproduces the paper's evaluation (§3): it runs the
// 12 PowerStone kernels on the VM to obtain instruction and data traces,
// then regenerates every table and figure — trace statistics (Tables 5/6),
// optimal cache instances per benchmark and budget (Tables 7–30), algorithm
// run times (Tables 31/32), and the run-time-vs-N·N' scaling study
// (Figure 4). cmd/repro and the root benchmark suite both drive this
// package.
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/example/cachedse/internal/cache"
	"github.com/example/cachedse/internal/core"
	"github.com/example/cachedse/internal/minicbench"
	"github.com/example/cachedse/internal/powerstone"
	"github.com/example/cachedse/internal/report"
	"github.com/example/cachedse/internal/trace"
	"github.com/example/cachedse/internal/tracegen"
)

// Stream selects the instruction or data reference stream of a benchmark.
type Stream uint8

// Streams.
const (
	Data Stream = iota
	Instruction
)

// String names the stream the way the paper's table captions do.
func (s Stream) String() string {
	if s == Instruction {
		return "instruction"
	}
	return "data"
}

// KPercents are the miss budgets of the evaluation: K is set to these
// percentages of each trace's maximum miss count.
var KPercents = []int{5, 10, 15, 20}

// TraceSet is one benchmark's pair of reference streams.
type TraceSet struct {
	Name  string
	Instr *trace.Trace
	Data  *trace.Trace
	// Cycles is the base execution cycle count (vm.R3000Latencies), used
	// by the performance extension table.
	Cycles uint64
}

// Stream returns the requested stream.
func (ts *TraceSet) Stream(s Stream) *trace.Trace {
	if s == Instruction {
		return ts.Instr
	}
	return ts.Data
}

// Suite holds the traced benchmark executions.
type Suite struct {
	Sets []TraceSet
	// Variant is empty for the paper's hand-assembly suite and names any
	// alternative dataset (e.g. "compiled") whose tables carry no paper
	// numbering.
	Variant string
}

// Get returns the trace set of the named benchmark, or nil.
func (s *Suite) Get(name string) *TraceSet {
	for i := range s.Sets {
		if s.Sets[i].Name == name {
			return &s.Sets[i]
		}
	}
	return nil
}

var (
	loadOnce sync.Once
	loaded   *Suite
	loadErr  error

	loadCompiledOnce sync.Once
	loadedCompiled   *Suite
	loadCompiledErr  error
)

// Load runs the full PowerStone suite once per process and caches the
// traces; executions are deterministic, so the cache is sound.
func Load() (*Suite, error) {
	loadOnce.Do(func() {
		s := &Suite{}
		for _, name := range powerstone.Names() {
			res, err := powerstone.Get(name).Run()
			if err != nil {
				loadErr = err
				return
			}
			s.Sets = append(s.Sets, TraceSet{Name: name, Instr: res.Instr, Data: res.Data, Cycles: res.Cycles})
		}
		loaded = s
	})
	return loaded, loadErr
}

// LoadCompiled builds the second dataset: the same 12 benchmarks in their
// minic-compiled form (internal/minicbench), whose traces carry the
// frame/call/stack shape of compiled code at roughly the paper's scale.
// All Suite machinery — statistics, optimal tables, run times, Figure 4 —
// applies unchanged.
func LoadCompiled() (*Suite, error) {
	loadCompiledOnce.Do(func() {
		s := &Suite{Variant: "compiled"}
		for _, name := range powerstone.Names() {
			k := minicbench.Get(name)
			if k == nil {
				loadCompiledErr = fmt.Errorf("experiments: no compiled kernel %q", name)
				return
			}
			res, err := k.Run()
			if err != nil {
				loadCompiledErr = err
				return
			}
			s.Sets = append(s.Sets, TraceSet{Name: name, Instr: res.Instr, Data: res.Data, Cycles: res.Cycles})
		}
		loadedCompiled = s
	})
	return loadedCompiled, loadCompiledErr
}

// StatsTable regenerates Table 5 (data) or Table 6 (instruction): per
// benchmark, the trace size N, unique references N', and the maximum number
// of non-cold misses (depth-1 direct-mapped). The max-miss column is
// computed analytically and cross-checked against the cache simulator.
func (s *Suite) StatsTable(stream Stream) (*report.Table, error) {
	num := 5
	if stream == Instruction {
		num = 6
	}
	title := fmt.Sprintf("Table %d: %s trace statistics", num, stream)
	if s.Variant != "" {
		title = fmt.Sprintf("%s trace statistics (%s suite)", stream, s.Variant)
	}
	t := &report.Table{
		Title:   title,
		Headers: []string{"Benchmark", "Size N", "Unique References N'", "Max. Misses"},
	}
	for _, ts := range s.Sets {
		tr := ts.Stream(stream)
		st := trace.ComputeStats(tr)
		res, err := cache.Simulate(cache.Config{Depth: 1, Assoc: 1}, tr)
		if err != nil {
			return nil, err
		}
		if res.Misses != st.MaxMisses {
			return nil, fmt.Errorf("experiments: %s/%s: analytic max misses %d != simulated %d",
				ts.Name, stream, st.MaxMisses, res.Misses)
		}
		t.AddRow(ts.Name, st.N, st.NUnique, st.MaxMisses)
	}
	return t, nil
}

// Budgets returns the absolute K values for a trace: KPercents of its
// maximum miss count.
func Budgets(tr *trace.Trace) []int {
	max := trace.ComputeStats(tr).MaxMisses
	out := make([]int, len(KPercents))
	for i, p := range KPercents {
		out[i] = max * p / 100
	}
	return out
}

// OptimalResult is one regenerated Tables 7–30 grid plus the exploration it
// came from, so callers can verify instances by simulation.
type OptimalResult struct {
	Table   *report.Table
	Result  *core.Result
	Budgets []int
}

// tableNumber maps (benchmark, stream) to the paper's table numbering:
// Tables 7–18 are the data caches, 19–30 the instruction caches, both in
// the suite's alphabetical benchmark order.
func (s *Suite) tableNumber(name string, stream Stream) int {
	for i := range s.Sets {
		if s.Sets[i].Name == name {
			if stream == Instruction {
				return 19 + i
			}
			return 7 + i
		}
	}
	return 0
}

// Optimal regenerates the optimal cache instance table of one benchmark and
// stream: one row per power-of-two depth, one associativity column per
// K percentage.
func (s *Suite) Optimal(name string, stream Stream) (*OptimalResult, error) {
	ts := s.Get(name)
	if ts == nil {
		return nil, fmt.Errorf("experiments: unknown benchmark %q", name)
	}
	tr := ts.Stream(stream)
	budgets := Budgets(tr)
	r, err := core.Explore(context.Background(), tr, core.Options{})
	if err != nil {
		return nil, err
	}
	title := fmt.Sprintf("Table %d: Optimal %s cache instances for %s",
		s.tableNumber(name, stream), stream, name)
	if s.Variant != "" {
		title = fmt.Sprintf("Optimal %s cache instances for %s (%s suite)", stream, name, s.Variant)
	}
	t := &report.Table{
		Title:   title,
		Headers: []string{"Depth D"},
	}
	for _, p := range KPercents {
		t.Headers = append(t.Headers, fmt.Sprintf("A @ K=%d%%", p))
	}
	for _, l := range r.Levels {
		row := []interface{}{l.Depth}
		for _, k := range budgets {
			row = append(row, l.MinAssoc(k))
		}
		t.AddRow(row...)
	}
	return &OptimalResult{Table: t, Result: r, Budgets: budgets}, nil
}

// VerifyOptimal simulates every (depth, minimal associativity) instance of
// an OptimalResult at every budget and reports the first violation of
// either the budget guarantee or the exactness of the analytical count.
func (s *Suite) VerifyOptimal(name string, stream Stream, or *OptimalResult) error {
	tr := s.Get(name).Stream(stream)
	for _, l := range or.Result.Levels {
		for _, k := range or.Budgets {
			a := l.MinAssoc(k)
			res, err := cache.Simulate(cache.Config{Depth: l.Depth, Assoc: a}, tr)
			if err != nil {
				return err
			}
			if res.Misses > k {
				return fmt.Errorf("experiments: %s/%s D=%d A=%d: %d misses > budget %d",
					name, stream, l.Depth, a, res.Misses, k)
			}
			if res.Misses != l.Misses(a) {
				return fmt.Errorf("experiments: %s/%s D=%d A=%d: simulated %d != analytical %d",
					name, stream, l.Depth, a, res.Misses, l.Misses(a))
			}
		}
	}
	return nil
}

// Timing is one run-time measurement for Tables 31/32 and Figure 4.
type Timing struct {
	Name    string
	N       int
	NUnique int
	Seconds float64
}

// Runtime regenerates Table 31 (data) or 32 (instruction): wall-clock time
// of the full analytical pipeline (strip + MRCT + postlude) per benchmark.
func (s *Suite) Runtime(stream Stream) (*report.Table, []Timing, error) {
	num := 31
	if stream == Instruction {
		num = 32
	}
	title := fmt.Sprintf("Table %d: Algorithm run time: %s traces", num, stream)
	if s.Variant != "" {
		title = fmt.Sprintf("Algorithm run time: %s traces (%s suite)", stream, s.Variant)
	}
	t := &report.Table{
		Title:   title,
		Headers: []string{"Benchmark", "Time (sec)", "N", "N'"},
	}
	var timings []Timing
	for _, ts := range s.Sets {
		tr := ts.Stream(stream)
		start := time.Now()
		if _, err := core.Explore(context.Background(), tr, core.Options{}); err != nil {
			return nil, nil, err
		}
		el := time.Since(start).Seconds()
		st := trace.ComputeStats(tr)
		timings = append(timings, Timing{Name: ts.Name, N: st.N, NUnique: st.NUnique, Seconds: el})
		t.AddRow(ts.Name, fmt.Sprintf("%.5f", el), st.N, st.NUnique)
	}
	return t, timings, nil
}

// ControlledScaling is the complementary Figure 4 study on homogeneous
// synthetic traces: it sweeps a grid of (N, N') targets with a fixed
// workload shape and times the exploration of each, isolating the
// linear-in-N·N' claim from the workload-shape variance the PowerStone
// kernels add. Each point is the best of three runs to damp scheduler
// noise.
func ControlledScaling(seed int64) ([]Timing, error) {
	rng := rand.New(rand.NewSource(seed))
	var out []Timing
	for _, n := range []int{2000, 4000, 8000, 16000} {
		for _, unique := range []int{100, 200, 400} {
			tr, err := tracegen.Sized(rng, n, unique)
			if err != nil {
				return nil, err
			}
			best := 0.0
			for rep := 0; rep < 3; rep++ {
				start := time.Now()
				if _, err := core.Explore(context.Background(), tr, core.Options{}); err != nil {
					return nil, err
				}
				el := time.Since(start).Seconds()
				if rep == 0 || el < best {
					best = el
				}
			}
			out = append(out, Timing{
				Name:    fmt.Sprintf("sized-%d-%d", n, unique),
				N:       n,
				NUnique: unique,
				Seconds: best,
			})
		}
	}
	return out, nil
}

// Figure4 fits run time against N·N' over the supplied timings and renders
// the scatter; the paper's claim is that the relationship is linear on
// average.
func Figure4(timings []Timing) (report.Fit, string, error) {
	xs := make([]float64, len(timings))
	ys := make([]float64, len(timings))
	for i, tm := range timings {
		xs[i] = float64(tm.N) * float64(tm.NUnique)
		ys[i] = tm.Seconds
	}
	fit, err := report.LinearFit(xs, ys)
	if err != nil {
		return report.Fit{}, "", err
	}
	return fit, report.AsciiScatter(xs, ys, fit, 64, 16), nil
}
