package experiments

import (
	"context"
	"fmt"

	"github.com/example/cachedse/internal/bus"
	"github.com/example/cachedse/internal/cache"
	"github.com/example/cachedse/internal/cacti"
	"github.com/example/cachedse/internal/core"
	"github.com/example/cachedse/internal/dse"
	"github.com/example/cachedse/internal/minicbench"
	"github.com/example/cachedse/internal/report"
	"github.com/example/cachedse/internal/trace"
)

// Extension experiments: paper-style tables for the future-work axes (§4)
// built on the same traced suite — replacement policies, energy-optimal
// design points, and address-bus activity. These have no counterpart
// table numbers in the paper; cmd/repro prints them under -extensions.

// PolicyTable compares replacement policies at a fixed geometry across the
// suite's chosen stream.
func (s *Suite) PolicyTable(stream Stream, depth, assoc int) (*report.Table, error) {
	t := &report.Table{
		Title: fmt.Sprintf("Extension: replacement policies, %s traces, D=%d A=%d",
			stream, depth, assoc),
		Headers: []string{"Benchmark", "LRU", "FIFO", "PLRU", "Random"},
	}
	for _, ts := range s.Sets {
		tr := ts.Stream(stream)
		row := []interface{}{ts.Name}
		for _, repl := range []cache.Replacement{cache.LRU, cache.FIFO, cache.PLRU, cache.Random} {
			res, err := cache.Simulate(cache.Config{Depth: depth, Assoc: assoc, Repl: repl}, tr)
			if err != nil {
				return nil, err
			}
			row = append(row, res.Misses)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// EnergyTable reports the minimum-energy configuration per benchmark at a
// 10%-of-max miss budget.
func (s *Suite) EnergyTable(stream Stream, capWords int, missPenaltyPJ float64) (*report.Table, error) {
	t := &report.Table{
		Title: fmt.Sprintf("Extension: minimum-energy instances, %s traces (cap %d words, penalty %.0f pJ)",
			stream, capWords, missPenaltyPJ),
		Headers: []string{"Benchmark", "K", "Line", "Depth", "Assoc", "Total misses", "Energy (nJ)"},
	}
	params := cacti.DefaultParams()
	for _, ts := range s.Sets {
		tr := ts.Stream(stream)
		k := trace.ComputeStats(tr).MaxMisses / 10
		choice, err := dse.EnergyAware(tr, k, []int{1, 2, 4}, capWords, params, missPenaltyPJ)
		if err != nil {
			return nil, err
		}
		t.AddRow(ts.Name, k, choice.LineWords, choice.Instance.Depth, choice.Instance.Assoc,
			choice.Misses, fmt.Sprintf("%.1f", choice.EnergyPJ/1000))
	}
	return t, nil
}

// BusTable reports address-bus transitions per access for each encoding.
func (s *Suite) BusTable(stream Stream) *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Extension: address-bus toggles per access, %s traces", stream),
		Headers: []string{"Benchmark", "binary", "gray", "t0", "bus-invert"},
	}
	for _, ts := range s.Sets {
		tr := ts.Stream(stream)
		row := []interface{}{ts.Name}
		for _, r := range bus.Compare(tr) {
			row = append(row, fmt.Sprintf("%.2f", r.PerAccess))
		}
		t.AddRow(row...)
	}
	return t
}

// LoopCacheTable reports the fraction of instruction fetches a tagless
// loop cache of each size serves per benchmark — the Lee/Moyer/Arends
// structure from the paper's related-work neighbourhood, driven by our
// synthesised instruction traces.
func (s *Suite) LoopCacheTable(sizes []int) (*report.Table, error) {
	t := &report.Table{
		Title:   "Extension: loop cache serve ratio, instruction traces",
		Headers: []string{"Benchmark"},
	}
	for _, sz := range sizes {
		t.Headers = append(t.Headers, fmt.Sprintf("%d-entry", sz))
	}
	for _, ts := range s.Sets {
		row := []interface{}{ts.Name}
		for _, sz := range sizes {
			lc, err := cache.NewLoopCache(sz)
			if err != nil {
				return nil, err
			}
			for _, r := range ts.Instr.Refs {
				lc.Fetch(r.Addr)
			}
			row = append(row, fmt.Sprintf("%.2f", lc.ServeRatio()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// CompilerTable contrasts hand-assembly and minic-compiled variants of the
// kernels that exist in both forms: same algorithm and inputs
// (bit-identical checksums, enforced by minicbench's tests), different code
// shape — the compiled-benchmark methodology of the paper's §3.
func (s *Suite) CompilerTable() (*report.Table, error) {
	t := &report.Table{
		Title: "Extension: hand assembly vs minic-compiled kernels (instruction streams, K=10%)",
		Headers: []string{"Benchmark", "Variant", "N", "N'", "Max misses",
			"Smallest instance @10%"},
	}
	// Three representative kernels (streaming, table-driven, recursive);
	// the full compiled dataset is available via LoadCompiled and
	// `repro -compiled`.
	for _, name := range []string{"fir", "crc", "ucbqsort"} {
		k := minicbench.Get(name)
		cres, err := k.Run()
		if err != nil {
			return nil, err
		}
		hand := s.Get(k.Name)
		if hand == nil {
			return nil, fmt.Errorf("experiments: no hand variant for %q", k.Name)
		}
		for _, v := range []struct {
			variant string
			tr      *trace.Trace
		}{
			{"hand", hand.Instr},
			{"compiled", cres.Instr},
		} {
			st := trace.ComputeStats(v.tr)
			r, err := core.Explore(context.Background(), v.tr, core.Options{})
			if err != nil {
				return nil, err
			}
			p := r.ParetoSet(st.MaxMisses / 10)
			best := p[len(p)-1]
			t.AddRow(k.Name, v.variant, st.N, st.NUnique, st.MaxMisses,
				fmt.Sprintf("%v = %d words", best, best.SizeWords()))
		}
	}
	return t, nil
}

// PerformanceTable estimates end-to-end execution time per benchmark: base
// CPU cycles (vm.R3000Latencies) plus memory stall cycles from the
// analytically-computed miss counts of the cheapest instruction and data
// caches meeting a 10% miss budget. missPenalty is the stall per miss in
// cycles. This closes the loop the paper's introduction opens — cache
// tuning as a processor-performance problem.
func (s *Suite) PerformanceTable(missPenalty uint64) (*report.Table, error) {
	t := &report.Table{
		Title: fmt.Sprintf("Extension: estimated execution time (K=10%%, %d-cycle miss penalty)", missPenalty),
		Headers: []string{"Benchmark", "Base cycles", "I-cache", "I-stall",
			"D-cache", "D-stall", "Total cycles", "CPI"},
	}
	for _, ts := range s.Sets {
		var stalls [2]uint64
		var chosen [2]string
		for i, stream := range []Stream{Instruction, Data} {
			tr := ts.Stream(stream)
			st := trace.ComputeStats(tr)
			r, err := core.Explore(context.Background(), tr, core.Options{})
			if err != nil {
				return nil, err
			}
			frontier := r.ParetoSet(st.MaxMisses / 10)
			ins := frontier[0] // cheapest instance meeting the budget
			misses := uint64(r.NUnique + r.Level(ins.Depth).Misses(ins.Assoc))
			stalls[i] = misses * missPenalty
			chosen[i] = ins.String()
		}
		total := ts.Cycles + stalls[0] + stalls[1]
		cpi := float64(total) / float64(ts.Instr.Len())
		t.AddRow(ts.Name, ts.Cycles, chosen[0], stalls[0], chosen[1], stalls[1],
			total, fmt.Sprintf("%.2f", cpi))
	}
	return t, nil
}

// DedupTable reports the exact trace reduction's effect per benchmark.
func (s *Suite) DedupTable(stream Stream) *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Extension: immediate-repeat trace reduction, %s traces", stream),
		Headers: []string{"Benchmark", "N", "N reduced", "Removed %"},
	}
	for _, ts := range s.Sets {
		tr := ts.Stream(stream)
		reduced, removed := trace.Dedup(tr)
		pct := 0.0
		if tr.Len() > 0 {
			pct = 100 * float64(removed) / float64(tr.Len())
		}
		t.AddRow(ts.Name, tr.Len(), reduced.Len(), fmt.Sprintf("%.1f", pct))
	}
	return t
}
