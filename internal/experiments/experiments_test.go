package experiments

import (
	"strings"
	"testing"

	"github.com/example/cachedse/internal/trace"
)

func loadSuite(t *testing.T) *Suite {
	t.Helper()
	s, err := Load()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLoadAllTwelve(t *testing.T) {
	s := loadSuite(t)
	if len(s.Sets) != 12 {
		t.Fatalf("suite has %d trace sets, want 12", len(s.Sets))
	}
	for _, ts := range s.Sets {
		if ts.Instr.Len() == 0 || ts.Data.Len() == 0 {
			t.Errorf("%s: empty stream (I=%d D=%d)", ts.Name, ts.Instr.Len(), ts.Data.Len())
		}
	}
	if s.Get("crc") == nil || s.Get("nosuch") != nil {
		t.Error("Get lookup broken")
	}
}

func TestStreamSelection(t *testing.T) {
	s := loadSuite(t)
	ts := s.Get("crc")
	if ts.Stream(Data) != ts.Data || ts.Stream(Instruction) != ts.Instr {
		t.Fatal("Stream selection wrong")
	}
	if Data.String() != "data" || Instruction.String() != "instruction" {
		t.Fatal("Stream names wrong")
	}
}

func TestStatsTables(t *testing.T) {
	s := loadSuite(t)
	for _, stream := range []Stream{Data, Instruction} {
		tab, err := s.StatsTable(stream)
		if err != nil {
			t.Fatalf("%v: %v", stream, err)
		}
		if len(tab.Rows) != 12 {
			t.Fatalf("%v stats table has %d rows, want 12", stream, len(tab.Rows))
		}
		if !strings.Contains(tab.Title, "Table") {
			t.Errorf("missing table number in title %q", tab.Title)
		}
	}
}

func TestBudgets(t *testing.T) {
	tr := trace.FromAddrs(trace.DataRead, []uint32{1, 2, 1, 2, 1, 2, 1, 2})
	// MaxMisses = 6.
	got := Budgets(tr)
	want := []int{0, 0, 0, 1} // 5%,10%,15%,20% of 6, floored
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Budgets = %v, want %v", got, want)
		}
	}
}

func TestOptimalTableShape(t *testing.T) {
	s := loadSuite(t)
	or, err := s.Optimal("crc", Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(or.Table.Headers) != 5 {
		t.Fatalf("headers = %v", or.Table.Headers)
	}
	if len(or.Table.Rows) != len(or.Result.Levels) {
		t.Fatalf("%d rows for %d levels", len(or.Table.Rows), len(or.Result.Levels))
	}
	// Depths double down the rows.
	if or.Result.Levels[0].Depth != 1 {
		t.Fatal("first level is not depth 1")
	}
	for i := 1; i < len(or.Result.Levels); i++ {
		if or.Result.Levels[i].Depth != 2*or.Result.Levels[i-1].Depth {
			t.Fatal("depths do not double")
		}
	}
	if !strings.Contains(or.Table.Title, "Table 11") { // crc is 5th alphabetically: 7+4
		t.Errorf("crc data table title = %q, want Table 11", or.Table.Title)
	}
}

func TestOptimalUnknownBenchmark(t *testing.T) {
	s := loadSuite(t)
	if _, err := s.Optimal("nosuch", Data); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestTableNumbering(t *testing.T) {
	s := loadSuite(t)
	// Alphabetical: adpcm bcnt blit compress crc des engine fir g3fax
	// pocsag qurt ucbqsort -> data tables 7..18, instruction 19..30.
	cases := []struct {
		name   string
		stream Stream
		want   int
	}{
		{"adpcm", Data, 7},
		{"ucbqsort", Data, 18},
		{"adpcm", Instruction, 19},
		{"ucbqsort", Instruction, 30},
		{"crc", Instruction, 23},
	}
	for _, c := range cases {
		if got := s.tableNumber(c.name, c.stream); got != c.want {
			t.Errorf("tableNumber(%s, %v) = %d, want %d", c.name, c.stream, got, c.want)
		}
	}
}

// The headline guarantee across the full suite: every emitted instance
// meets its budget under simulation, and the analytical count is exact.
// Verifying all 12x2 grids is the repository's most important integration
// test.
func TestVerifyAllOptimalTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite verification in short mode")
	}
	s := loadSuite(t)
	for _, ts := range s.Sets {
		for _, stream := range []Stream{Data, Instruction} {
			or, err := s.Optimal(ts.Name, stream)
			if err != nil {
				t.Fatalf("%s/%v: %v", ts.Name, stream, err)
			}
			if err := s.VerifyOptimal(ts.Name, stream, or); err != nil {
				t.Errorf("%v", err)
			}
		}
	}
}

// Monotonicity visible throughout Tables 7-30: associativity never
// increases with the budget, and the A@5% column dominates.
func TestOptimalTablesMonotone(t *testing.T) {
	s := loadSuite(t)
	for _, ts := range s.Sets {
		or, err := s.Optimal(ts.Name, Data)
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range or.Result.Levels {
			prev := -1
			for _, k := range or.Budgets {
				a := l.MinAssoc(k)
				if prev >= 0 && a > prev {
					t.Fatalf("%s D=%d: associativity increases with budget", ts.Name, l.Depth)
				}
				prev = a
			}
		}
	}
}

func TestRuntimeTables(t *testing.T) {
	s := loadSuite(t)
	tab, timings, err := s.Runtime(Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(timings) != 12 || len(tab.Rows) != 12 {
		t.Fatalf("timings %d rows %d, want 12", len(timings), len(tab.Rows))
	}
	for _, tm := range timings {
		if tm.Seconds < 0 || tm.N == 0 || tm.NUnique == 0 {
			t.Errorf("bad timing %+v", tm)
		}
	}
}

func TestFigure4Fit(t *testing.T) {
	s := loadSuite(t)
	_, dTimes, err := s.Runtime(Data)
	if err != nil {
		t.Fatal(err)
	}
	_, iTimes, err := s.Runtime(Instruction)
	if err != nil {
		t.Fatal(err)
	}
	fit, scatter, err := Figure4(append(dTimes, iTimes...))
	if err != nil {
		t.Fatal(err)
	}
	if fit.N != 24 {
		t.Fatalf("fit over %d points, want 24", fit.N)
	}
	if scatter == "" {
		t.Fatal("empty scatter plot")
	}
	// The slope should be positive: more work, more time. R2 is checked
	// loosely here (timing noise on a busy machine); the bench harness
	// reports the actual value.
	if fit.Slope <= 0 {
		t.Fatalf("fit slope %v, want positive", fit.Slope)
	}
}

func TestControlledScalingIsLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("timing study in short mode")
	}
	timings, err := ControlledScaling(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(timings) != 12 {
		t.Fatalf("%d points, want 12", len(timings))
	}
	fit, _, err := Figure4(timings)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope <= 0 {
		t.Fatalf("slope %v, want positive", fit.Slope)
	}
	// Homogeneous workloads should make the linearity unmistakable even
	// on a noisy machine.
	if fit.R2 < 0.8 {
		t.Fatalf("controlled scaling R^2 = %.3f, want >= 0.8 (time not linear in N*N')", fit.R2)
	}
}

func TestFigure4ErrorOnTooFewPoints(t *testing.T) {
	if _, _, err := Figure4([]Timing{{N: 1, NUnique: 1}}); err == nil {
		t.Fatal("single timing accepted")
	}
}
