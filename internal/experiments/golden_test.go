package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// Golden snapshots: the suite's executions are fully deterministic, so
// every regenerated paper table is byte-stable. Any change to the kernels,
// the VM, the tracer or the analytical algorithms that perturbs a table
// shows up here first. Regenerate intentionally with:
//
//	go test ./internal/experiments -run Golden -update
func TestGoldenTables(t *testing.T) {
	s := loadSuite(t)
	artifacts := map[string]func() (string, error){
		"table05_data_stats.txt": func() (string, error) {
			tab, err := s.StatsTable(Data)
			if err != nil {
				return "", err
			}
			return tab.Render(), nil
		},
		"table06_instr_stats.txt": func() (string, error) {
			tab, err := s.StatsTable(Instruction)
			if err != nil {
				return "", err
			}
			return tab.Render(), nil
		},
		"table11_crc_data.txt": func() (string, error) {
			or, err := s.Optimal("crc", Data)
			if err != nil {
				return "", err
			}
			return or.Table.Render(), nil
		},
		"table18_ucbqsort_data.txt": func() (string, error) {
			or, err := s.Optimal("ucbqsort", Data)
			if err != nil {
				return "", err
			}
			return or.Table.Render(), nil
		},
		"table30_ucbqsort_instr.txt": func() (string, error) {
			or, err := s.Optimal("ucbqsort", Instruction)
			if err != nil {
				return "", err
			}
			return or.Table.Render(), nil
		},
	}
	for name, gen := range artifacts {
		name, gen := name, gen
		t.Run(name, func(t *testing.T) {
			got, err := gen()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", name)
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if got != string(want) {
				t.Errorf("table drifted from golden snapshot %s.\ngot:\n%s\nwant:\n%s%s",
					name, got, want, fmt.Sprintf("(regenerate intentionally with -update)"))
			}
		})
	}
}
