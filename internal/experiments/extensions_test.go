package experiments

import (
	"strconv"
	"strings"
	"testing"

	"github.com/example/cachedse/internal/cache"
	"github.com/example/cachedse/internal/trace"
)

func TestPolicyTableShape(t *testing.T) {
	s := loadSuite(t)
	tab, err := s.PolicyTable(Data, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 || len(tab.Headers) != 5 {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Headers))
	}
	// Spot-check one cell against a direct simulation.
	tr := s.Get("crc").Data
	res, err := cache.Simulate(cache.Config{Depth: 32, Assoc: 4, Repl: cache.LRU}, tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[0] == "crc" {
			if row[1] != strconv.Itoa(res.Misses) {
				t.Fatalf("crc LRU cell = %s, want %d", row[1], res.Misses)
			}
			return
		}
	}
	t.Fatal("crc row missing")
}

func TestPolicyTableBadConfig(t *testing.T) {
	s := loadSuite(t)
	if _, err := s.PolicyTable(Data, 3, 1); err == nil {
		t.Fatal("bad depth accepted")
	}
}

func TestEnergyTableBudgetsHold(t *testing.T) {
	if testing.Short() {
		t.Skip("energy sweep in short mode")
	}
	s := loadSuite(t)
	tab, err := s.EnergyTable(Data, 8192, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// Each chosen instance must meet its K under simulation.
	for _, row := range tab.Rows {
		name := row[0]
		k, _ := strconv.Atoi(row[1])
		lw, _ := strconv.Atoi(row[2])
		depth, _ := strconv.Atoi(row[3])
		assoc, _ := strconv.Atoi(row[4])
		tr := s.Get(name).Data
		res, err := cache.Simulate(cache.Config{Depth: depth, Assoc: assoc, LineWords: lw}, tr)
		if err != nil {
			t.Fatal(err)
		}
		if res.Misses > k {
			t.Errorf("%s: chosen D=%d A=%d L=%d misses %d > K=%d", name, depth, assoc, lw, res.Misses, k)
		}
	}
}

func TestBusTableOrdering(t *testing.T) {
	s := loadSuite(t)
	tab := s.BusTable(Instruction)
	if len(tab.Rows) != 12 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// Instruction streams are run-dominated: gray must beat binary and t0
	// must beat gray on every benchmark.
	for _, row := range tab.Rows {
		bin, _ := strconv.ParseFloat(row[1], 64)
		gray, _ := strconv.ParseFloat(row[2], 64)
		t0, _ := strconv.ParseFloat(row[3], 64)
		if !(t0 < gray && gray < bin) {
			t.Errorf("%s: expected t0 < gray < binary, got %v %v %v", row[0], t0, gray, bin)
		}
	}
}

func TestLoopCacheTable(t *testing.T) {
	s := loadSuite(t)
	tab, err := s.LoopCacheTable([]int{8, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 || len(tab.Headers) != 3 {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Headers))
	}
	anyServed := false
	for _, row := range tab.Rows {
		small, _ := strconv.ParseFloat(row[1], 64)
		big, _ := strconv.ParseFloat(row[2], 64)
		if small < 0 || small > 1 || big < 0 || big > 1 {
			t.Errorf("%s: ratios out of range: %v %v", row[0], small, big)
		}
		if big > 0.1 {
			anyServed = true
		}
	}
	// Loop-dominated embedded kernels: at least some benchmarks must be
	// served substantially by a 64-entry loop cache.
	if !anyServed {
		t.Fatal("no benchmark is served by a 64-entry loop cache; traces are not loop-shaped")
	}
}

func TestLoadCompiledSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("compiled suite in short mode")
	}
	cs, err := LoadCompiled()
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Sets) != 12 || cs.Variant != "compiled" {
		t.Fatalf("compiled suite: %d sets, variant %q", len(cs.Sets), cs.Variant)
	}
	// Compiled traces dwarf the hand-assembly ones.
	hs := loadSuite(t)
	for _, ts := range cs.Sets {
		hand := hs.Get(ts.Name)
		if ts.Instr.Len() <= hand.Instr.Len() {
			t.Errorf("%s: compiled instr trace %d <= hand %d", ts.Name, ts.Instr.Len(), hand.Instr.Len())
		}
	}
	// Table titles drop paper numbering on the variant suite.
	tab, err := cs.StatsTable(Data)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(tab.Title, "Table 5") || !strings.Contains(tab.Title, "compiled") {
		t.Fatalf("variant title = %q", tab.Title)
	}
	or, err := cs.Optimal("crc", Data)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(or.Table.Title, "Table 11") {
		t.Fatalf("variant optimal title = %q", or.Table.Title)
	}
	// The exactness guarantee holds on compiled traces too.
	if err := cs.VerifyOptimal("crc", Data, or); err != nil {
		t.Fatal(err)
	}
}

func TestCompilerTable(t *testing.T) {
	if testing.Short() {
		t.Skip("compiler table in short mode")
	}
	s := loadSuite(t)
	tab, err := s.CompilerTable()
	if err != nil {
		t.Fatal(err)
	}
	// Every compiled kernel contributes a hand and a compiled row.
	if len(tab.Rows)%2 != 0 || len(tab.Rows) < 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for i := 0; i < len(tab.Rows); i += 2 {
		if tab.Rows[i][1] != "hand" || tab.Rows[i+1][1] != "compiled" {
			t.Fatalf("row pairing broken at %d: %v", i, tab.Rows[i])
		}
		handN, _ := strconv.Atoi(tab.Rows[i][2])
		compN, _ := strconv.Atoi(tab.Rows[i+1][2])
		if compN <= handN {
			t.Errorf("%s: compiled N %d <= hand N %d", tab.Rows[i][0], compN, handN)
		}
	}
}

func TestPerformanceTable(t *testing.T) {
	if testing.Short() {
		t.Skip("performance sweep in short mode")
	}
	s := loadSuite(t)
	tab, err := s.PerformanceTable(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		base, _ := strconv.ParseUint(row[1], 10, 64)
		total, _ := strconv.ParseUint(row[6], 10, 64)
		cpi, _ := strconv.ParseFloat(row[7], 64)
		if base == 0 {
			t.Errorf("%s: zero base cycles", row[0])
		}
		if total < base {
			t.Errorf("%s: total %d < base %d", row[0], total, base)
		}
		// Single-issue with >= 1-cycle instructions: CPI >= 1.
		if cpi < 1 {
			t.Errorf("%s: CPI %v < 1", row[0], cpi)
		}
	}
}

func TestDedupTableConsistency(t *testing.T) {
	s := loadSuite(t)
	tab := s.DedupTable(Data)
	for _, row := range tab.Rows {
		n, _ := strconv.Atoi(row[1])
		reduced, _ := strconv.Atoi(row[2])
		if reduced > n {
			t.Errorf("%s: reduced %d > original %d", row[0], reduced, n)
		}
		tr := s.Get(row[0]).Data
		got, removed := trace.Dedup(tr)
		if got.Len() != reduced || removed != n-reduced {
			t.Errorf("%s: table disagrees with Dedup", row[0])
		}
	}
}
