// Package asm implements a two-pass assembler for the vm package's
// MIPS-like ISA. It exists so the PowerStone benchmark kernels can be
// written as readable assembly source — the way the paper's benchmarks were
// compiled for its MIPS R3000 simulator — rather than as hand-built
// instruction slices.
//
// Syntax summary:
//
//	# comment, ; comment, // comment
//	        .data
//	tab:    .word 1, 2, 0x10, label   # words or addresses of labels
//	buf:    .space 64                 # 64 zero words
//	        .text
//	main:   li   $t0, 100000          # pseudo: lui+ori
//	loop:   lw   $t1, 0($t0)
//	        addi $t0, $t0, 1
//	        bne  $t0, $t2, loop
//	        halt
//
// Registers accept MIPS conventional names ($zero, $at, $v0-$v1, $a0-$a3,
// $t0-$t9, $s0-$s7, $k0-$k1, $gp, $sp, $fp, $ra) or plain numbers ($0-$31).
// Text labels resolve to instruction indices, data labels to word addresses
// in the data segment. Pseudo-instructions: li, la, move, nop, b, beqz,
// bnez, bgt, ble, subi, neg, not.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/example/cachedse/internal/vm"
)

// Program is the output of assembly: a program image plus its initial data
// segment and symbol table.
type Program struct {
	Instrs  []vm.Instr
	Data    []uint32
	Symbols map[string]Symbol
}

// Segment identifies which address space a symbol lives in.
type Segment uint8

// Segments.
const (
	SegText Segment = iota
	SegData
)

// Symbol is a resolved label.
type Symbol struct {
	Value   uint32
	Segment Segment
}

// Entry returns the entry PC: the "main" label if defined, else 0.
func (p *Program) Entry() uint32 {
	if s, ok := p.Symbols["main"]; ok && s.Segment == SegText {
		return s.Value
	}
	return 0
}

// NewCPU instantiates a CPU for the program with a data memory of at least
// memWords words (grown to fit the data segment), the data segment loaded,
// and the PC at the entry point.
func (p *Program) NewCPU(memWords int) *vm.CPU {
	if memWords < len(p.Data) {
		memWords = len(p.Data)
	}
	mem := vm.NewMemory(memWords)
	copy(mem.Words(), p.Data)
	c := vm.NewCPU(p.Instrs, mem)
	c.PC = p.Entry()
	return c
}

var regNames = map[string]uint8{
	"zero": 0, "at": 1, "v0": 2, "v1": 3,
	"a0": 4, "a1": 5, "a2": 6, "a3": 7,
	"t0": 8, "t1": 9, "t2": 10, "t3": 11, "t4": 12, "t5": 13, "t6": 14, "t7": 15,
	"s0": 16, "s1": 17, "s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23,
	"t8": 24, "t9": 25, "k0": 26, "k1": 27,
	"gp": 28, "sp": 29, "fp": 30, "ra": 31,
}

// Error is an assembly diagnostic carrying its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...interface{}) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// dataItem is a pending word in the data segment: either a literal value or
// a label whose address is patched in pass 2.
type dataItem struct {
	value uint32
	label string
	line  int
}

// stmt is one parsed instruction statement awaiting emission.
type stmt struct {
	line int
	op   string
	args []string
	pc   uint32 // index of first emitted instruction
}

// Assemble parses and assembles a source file.
func Assemble(src string) (*Program, error) {
	p := &Program{Symbols: make(map[string]Symbol)}
	var stmts []stmt
	var data []dataItem
	seg := SegText
	pc := uint32(0)

	// Pass 1: labels, sizing, data collection.
	for lineno, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		// Labels (possibly several) at the start of the line.
		for {
			trimmed := strings.TrimSpace(line)
			idx := strings.Index(trimmed, ":")
			if idx <= 0 || strings.ContainsAny(trimmed[:idx], " \t.$,(") {
				line = trimmed
				break
			}
			name := trimmed[:idx]
			if _, dup := p.Symbols[name]; dup {
				return nil, errf(lineno+1, "duplicate label %q", name)
			}
			if seg == SegText {
				p.Symbols[name] = Symbol{Value: pc, Segment: SegText}
			} else {
				p.Symbols[name] = Symbol{Value: uint32(len(data)), Segment: SegData}
			}
			line = trimmed[idx+1:]
		}
		if line == "" {
			continue
		}
		fields := splitOperands(line)
		op := strings.ToLower(fields[0])
		args := fields[1:]
		switch op {
		case ".text":
			seg = SegText
		case ".data":
			seg = SegData
		case ".word":
			if seg != SegData {
				return nil, errf(lineno+1, ".word outside .data")
			}
			if len(args) == 0 {
				return nil, errf(lineno+1, ".word needs at least one value")
			}
			for _, a := range args {
				if v, err := parseImm(a); err == nil {
					data = append(data, dataItem{value: uint32(v)})
				} else {
					data = append(data, dataItem{label: a, line: lineno + 1})
				}
			}
		case ".space":
			if seg != SegData {
				return nil, errf(lineno+1, ".space outside .data")
			}
			if len(args) != 1 {
				return nil, errf(lineno+1, ".space needs a word count")
			}
			n, err := parseImm(args[0])
			if err != nil || n < 0 {
				return nil, errf(lineno+1, "bad .space count %q", args[0])
			}
			for i := int64(0); i < n; i++ {
				data = append(data, dataItem{})
			}
		default:
			if strings.HasPrefix(op, ".") {
				return nil, errf(lineno+1, "unknown directive %q", op)
			}
			if seg != SegText {
				return nil, errf(lineno+1, "instruction %q outside .text", op)
			}
			size, err := instrSize(op, args)
			if err != nil {
				return nil, errf(lineno+1, "%v", err)
			}
			stmts = append(stmts, stmt{line: lineno + 1, op: op, args: args, pc: pc})
			pc += size
		}
	}

	// Materialise the data segment, patching label references.
	p.Data = make([]uint32, len(data))
	for i, d := range data {
		if d.label == "" {
			p.Data[i] = d.value
			continue
		}
		sym, ok := p.Symbols[d.label]
		if !ok {
			return nil, errf(d.line, "undefined symbol %q in .word", d.label)
		}
		p.Data[i] = sym.Value
	}

	// Pass 2: emit instructions.
	for _, st := range stmts {
		ins, err := emit(p, st)
		if err != nil {
			return nil, err
		}
		p.Instrs = append(p.Instrs, ins...)
	}
	return p, nil
}

// MustAssemble is Assemble that panics on error; for embedded programs
// whose source is fixed at compile time.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func stripComment(s string) string {
	for _, marker := range []string{"#", ";", "//"} {
		if i := strings.Index(s, marker); i >= 0 {
			s = s[:i]
		}
	}
	return strings.TrimSpace(s)
}

// splitOperands splits "op a, b, c" into ["op", "a", "b", "c"].
func splitOperands(line string) []string {
	var head string
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		head, line = line[:i], strings.TrimSpace(line[i+1:])
	} else {
		return []string{line}
	}
	out := []string{head}
	for _, part := range strings.Split(line, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseReg(s string) (uint8, error) {
	if !strings.HasPrefix(s, "$") {
		return 0, fmt.Errorf("bad register %q", s)
	}
	name := s[1:]
	if r, ok := regNames[name]; ok {
		return r, nil
	}
	n, err := strconv.Atoi(name)
	if err != nil || n < 0 || n > 31 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func parseImm(s string) (int64, error) {
	return strconv.ParseInt(s, 0, 64)
}

// parseMem parses "off($reg)" or "($reg)".
func parseMem(s string) (off int32, reg uint8, err error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	offStr := strings.TrimSpace(s[:open])
	if offStr != "" {
		v, err := parseImm(offStr)
		if err != nil || v < -0x8000 || v > 0x7FFF {
			return 0, 0, fmt.Errorf("bad displacement in %q", s)
		}
		off = int32(v)
	}
	reg, err = parseReg(strings.TrimSpace(s[open+1 : len(s)-1]))
	return off, reg, err
}

// instrSize returns how many machine instructions a statement expands to.
func instrSize(op string, args []string) (uint32, error) {
	switch op {
	case "li", "la":
		return 2, nil // always lui+ori for deterministic sizing
	case "add", "sub", "and", "or", "xor", "nor", "slt", "sltu", "sllv",
		"srlv", "srav", "mul", "div", "rem", "jr", "jalr", "out", "halt",
		"addi", "andi", "ori", "xori", "slti", "sll", "srl", "sra", "lui",
		"lw", "sw", "beq", "bne", "blt", "bge", "j", "jal",
		"move", "nop", "b", "beqz", "bnez", "bgt", "ble", "subi", "neg", "not":
		return 1, nil
	default:
		return 0, fmt.Errorf("unknown instruction %q", op)
	}
}

// resolve returns the value of a label or numeric operand.
func (p *Program) resolve(s string, line int) (int64, error) {
	if v, err := parseImm(s); err == nil {
		return v, nil
	}
	sym, ok := p.Symbols[s]
	if !ok {
		return 0, errf(line, "undefined symbol %q", s)
	}
	return int64(sym.Value), nil
}

// branchTarget computes the pc-relative offset for a branch at pc.
func (p *Program) branchTarget(s string, pc uint32, line int) (int32, error) {
	v, err := p.resolve(s, line)
	if err != nil {
		return 0, err
	}
	if sym, ok := p.Symbols[s]; ok && sym.Segment != SegText {
		return 0, errf(line, "branch target %q is not a text label", s)
	}
	off := v - int64(pc) - 1
	if off < -0x8000 || off > 0x7FFF {
		return 0, errf(line, "branch to %q out of range (%d)", s, off)
	}
	return int32(off), nil
}

func emit(p *Program, st stmt) ([]vm.Instr, error) {
	need := func(n int) error {
		if len(st.args) != n {
			return errf(st.line, "%s needs %d operands, got %d", st.op, n, len(st.args))
		}
		return nil
	}
	reg := func(i int) (uint8, error) {
		r, err := parseReg(st.args[i])
		if err != nil {
			return 0, errf(st.line, "%s: %v", st.op, err)
		}
		return r, nil
	}

	rrr := func(op vm.Op) ([]vm.Instr, error) {
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		rt, err := reg(2)
		if err != nil {
			return nil, err
		}
		return []vm.Instr{{Op: op, Rd: rd, Rs: rs, Rt: rt}}, nil
	}
	rri := func(op vm.Op, lo, hi int64) ([]vm.Instr, error) {
		if err := need(3); err != nil {
			return nil, err
		}
		rt, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		v, err := p.resolve(st.args[2], st.line)
		if err != nil {
			return nil, err
		}
		if v < lo || v > hi {
			return nil, errf(st.line, "%s: immediate %d outside [%d,%d]", st.op, v, lo, hi)
		}
		return []vm.Instr{{Op: op, Rt: rt, Rs: rs, Imm: int32(v)}}, nil
	}
	mem := func(op vm.Op) ([]vm.Instr, error) {
		if err := need(2); err != nil {
			return nil, err
		}
		rt, err := reg(0)
		if err != nil {
			return nil, err
		}
		off, rs, err := parseMem(st.args[1])
		if err != nil {
			return nil, errf(st.line, "%s: %v", st.op, err)
		}
		return []vm.Instr{{Op: op, Rt: rt, Rs: rs, Imm: off}}, nil
	}
	branch := func(op vm.Op, swap bool) ([]vm.Instr, error) {
		if err := need(3); err != nil {
			return nil, err
		}
		rs, err := reg(0)
		if err != nil {
			return nil, err
		}
		rt, err := reg(1)
		if err != nil {
			return nil, err
		}
		if swap {
			rs, rt = rt, rs
		}
		off, err := p.branchTarget(st.args[2], st.pc, st.line)
		if err != nil {
			return nil, err
		}
		return []vm.Instr{{Op: op, Rs: rs, Rt: rt, Imm: off}}, nil
	}
	loadConst := func(rt uint8, v int64) []vm.Instr {
		// Deterministic two-instruction expansion: lui upper, ori lower.
		u := uint32(v)
		return []vm.Instr{
			{Op: vm.OpLui, Rt: rt, Imm: int32(u >> 16)},
			{Op: vm.OpOri, Rt: rt, Rs: rt, Imm: int32(u & 0xFFFF)},
		}
	}

	switch st.op {
	case "add":
		return rrr(vm.OpAdd)
	case "sub":
		return rrr(vm.OpSub)
	case "and":
		return rrr(vm.OpAnd)
	case "or":
		return rrr(vm.OpOr)
	case "xor":
		return rrr(vm.OpXor)
	case "nor":
		return rrr(vm.OpNor)
	case "slt":
		return rrr(vm.OpSlt)
	case "sltu":
		return rrr(vm.OpSltu)
	case "sllv":
		return rrr(vm.OpSllv)
	case "srlv":
		return rrr(vm.OpSrlv)
	case "srav":
		return rrr(vm.OpSrav)
	case "mul":
		return rrr(vm.OpMul)
	case "div":
		return rrr(vm.OpDiv)
	case "rem":
		return rrr(vm.OpRem)

	case "addi":
		return rri(vm.OpAddi, -0x8000, 0x7FFF)
	case "subi":
		ins, err := rri(vm.OpAddi, -0x7FFF, 0x8000)
		if err != nil {
			return nil, err
		}
		ins[0].Imm = -ins[0].Imm
		return ins, nil
	case "andi":
		return rri(vm.OpAndi, 0, 0xFFFF)
	case "ori":
		return rri(vm.OpOri, 0, 0xFFFF)
	case "xori":
		return rri(vm.OpXori, 0, 0xFFFF)
	case "slti":
		return rri(vm.OpSlti, -0x8000, 0x7FFF)
	case "sll":
		return rri(vm.OpSll, 0, 31)
	case "srl":
		return rri(vm.OpSrl, 0, 31)
	case "sra":
		return rri(vm.OpSra, 0, 31)

	case "lui":
		if err := need(2); err != nil {
			return nil, err
		}
		rt, err := reg(0)
		if err != nil {
			return nil, err
		}
		v, err := p.resolve(st.args[1], st.line)
		if err != nil {
			return nil, err
		}
		if v < 0 || v > 0xFFFF {
			return nil, errf(st.line, "lui: immediate %d outside uint16", v)
		}
		return []vm.Instr{{Op: vm.OpLui, Rt: rt, Imm: int32(v)}}, nil

	case "lw":
		return mem(vm.OpLw)
	case "sw":
		return mem(vm.OpSw)

	case "beq":
		return branch(vm.OpBeq, false)
	case "bne":
		return branch(vm.OpBne, false)
	case "blt":
		return branch(vm.OpBlt, false)
	case "bge":
		return branch(vm.OpBge, false)
	case "bgt": // rs > rt == rt < rs
		return branch(vm.OpBlt, true)
	case "ble": // rs <= rt == rt >= rs
		return branch(vm.OpBge, true)

	case "beqz", "bnez":
		if err := need(2); err != nil {
			return nil, err
		}
		rs, err := reg(0)
		if err != nil {
			return nil, err
		}
		off, err := p.branchTarget(st.args[1], st.pc, st.line)
		if err != nil {
			return nil, err
		}
		op := vm.OpBeq
		if st.op == "bnez" {
			op = vm.OpBne
		}
		return []vm.Instr{{Op: op, Rs: rs, Rt: 0, Imm: off}}, nil

	case "b":
		if err := need(1); err != nil {
			return nil, err
		}
		off, err := p.branchTarget(st.args[0], st.pc, st.line)
		if err != nil {
			return nil, err
		}
		return []vm.Instr{{Op: vm.OpBeq, Imm: off}}, nil

	case "j", "jal":
		if err := need(1); err != nil {
			return nil, err
		}
		v, err := p.resolve(st.args[0], st.line)
		if err != nil {
			return nil, err
		}
		if v < 0 || v >= 1<<26 {
			return nil, errf(st.line, "%s: target %d outside 26 bits", st.op, v)
		}
		op := vm.OpJ
		if st.op == "jal" {
			op = vm.OpJal
		}
		return []vm.Instr{{Op: op, Imm: int32(v)}}, nil

	case "jr":
		if err := need(1); err != nil {
			return nil, err
		}
		rs, err := reg(0)
		if err != nil {
			return nil, err
		}
		return []vm.Instr{{Op: vm.OpJr, Rs: rs}}, nil

	case "jalr":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return []vm.Instr{{Op: vm.OpJalr, Rd: rd, Rs: rs}}, nil

	case "out":
		if err := need(1); err != nil {
			return nil, err
		}
		rs, err := reg(0)
		if err != nil {
			return nil, err
		}
		return []vm.Instr{{Op: vm.OpOut, Rs: rs}}, nil

	case "halt":
		if err := need(0); err != nil {
			return nil, err
		}
		return []vm.Instr{{Op: vm.OpHalt}}, nil

	case "nop":
		if err := need(0); err != nil {
			return nil, err
		}
		return []vm.Instr{{Op: vm.OpSll}}, nil

	case "move":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return []vm.Instr{{Op: vm.OpOr, Rd: rd, Rs: rs, Rt: 0}}, nil

	case "neg":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return []vm.Instr{{Op: vm.OpSub, Rd: rd, Rs: 0, Rt: rs}}, nil

	case "not":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return []vm.Instr{{Op: vm.OpNor, Rd: rd, Rs: rs, Rt: 0}}, nil

	case "li", "la":
		if err := need(2); err != nil {
			return nil, err
		}
		rt, err := reg(0)
		if err != nil {
			return nil, err
		}
		v, err := p.resolve(st.args[1], st.line)
		if err != nil {
			return nil, err
		}
		if v < -(1<<31) || v > (1<<32)-1 {
			return nil, errf(st.line, "%s: constant %d outside 32 bits", st.op, v)
		}
		return loadConst(rt, v), nil
	}
	return nil, errf(st.line, "unknown instruction %q", st.op)
}
