package asm

import (
	"strings"
	"testing"

	"github.com/example/cachedse/internal/vm"
)

// run assembles and executes a source file, returning the CPU.
func run(t *testing.T, src string) *vm.CPU {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	c := p.NewCPU(4096)
	if err := c.Run(1000000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return c
}

func TestSumLoop(t *testing.T) {
	c := run(t, `
# sum 1..100
main:   li   $t0, 0         # sum
        li   $t1, 1         # i
        li   $t2, 101
loop:   add  $t0, $t0, $t1
        addi $t1, $t1, 1
        bne  $t1, $t2, loop
        out  $t0
        halt
`)
	if len(c.Out) != 1 || c.Out[0] != 5050 {
		t.Fatalf("Out = %v, want [5050]", c.Out)
	}
}

func TestDataSegmentAndLa(t *testing.T) {
	c := run(t, `
        .data
arr:    .word 10, 20, 30, 40
n:      .word 4
sum:    .space 1
        .text
main:   la   $t0, arr
        la   $t1, n
        lw   $t1, 0($t1)      # n = 4
        li   $t2, 0           # sum
        li   $t3, 0           # i
loop:   add  $t4, $t0, $t3
        lw   $t5, 0($t4)
        add  $t2, $t2, $t5
        addi $t3, $t3, 1
        bne  $t3, $t1, loop
        la   $t6, sum
        sw   $t2, 0($t6)
        out  $t2
        halt
`)
	if len(c.Out) != 1 || c.Out[0] != 100 {
		t.Fatalf("Out = %v, want [100]", c.Out)
	}
	// sum label = word 5 in the data segment.
	if v, _ := c.Mem.Load(5); v != 100 {
		t.Fatalf("mem[sum] = %d, want 100", v)
	}
}

func TestWordWithLabelReference(t *testing.T) {
	p, err := Assemble(`
        .data
a:      .word 7
ptr:    .word a
        .text
main:   la   $t0, ptr
        lw   $t1, 0($t0)   # t1 = address of a = 0
        lw   $t2, 0($t1)   # t2 = 7
        out  $t2
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Data[1] != 0 {
		t.Fatalf("ptr word = %d, want 0 (address of a)", p.Data[1])
	}
	c := p.NewCPU(64)
	if err := c.Run(1000); err != nil {
		t.Fatal(err)
	}
	if len(c.Out) != 1 || c.Out[0] != 7 {
		t.Fatalf("Out = %v, want [7]", c.Out)
	}
}

func TestCallAndReturn(t *testing.T) {
	c := run(t, `
main:   li   $a0, 6
        jal  square
        out  $v0
        halt
square: mul  $v0, $a0, $a0
        jr   $ra
`)
	if len(c.Out) != 1 || c.Out[0] != 36 {
		t.Fatalf("Out = %v, want [36]", c.Out)
	}
}

func TestPseudoOps(t *testing.T) {
	c := run(t, `
main:   li   $t0, 5
        move $t1, $t0        # 5
        neg  $t2, $t0        # -5
        not  $t3, $0         # ~0
        subi $t4, $t0, 2     # 3
        nop
        li   $t5, 0x12345678 # 32-bit constant via lui+ori
        beqz $0, skip1
        li   $t6, 111
skip1:  bnez $t0, skip2
        li   $t7, 222
skip2:  li   $s0, 1
        li   $s1, 2
        bgt  $s1, $s0, skip3 # 2 > 1: taken
        li   $s2, 333
skip3:  ble  $s1, $s0, bad   # 2 <= 1: not taken
        b    done
bad:    li   $s3, 444
done:   halt
`)
	check := map[int]uint32{
		9:  5,
		10: ^uint32(4), // -5 two's complement
		11: ^uint32(0),
		12: 3,
		13: 0x12345678,
		14: 0, // skipped by beqz
		15: 0, // skipped by bnez
		18: 0, // skipped by bgt
		19: 0, // bad not reached
	}
	for r, w := range check {
		if c.Reg[r] != w {
			t.Errorf("r%d = %#x, want %#x", r, c.Reg[r], w)
		}
	}
}

func TestRegisterNamesAndNumbers(t *testing.T) {
	p, err := Assemble(`
main:   add $t0, $8, $zero
        add $31, $ra, $0
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].Rd != 8 || p.Instrs[0].Rs != 8 || p.Instrs[0].Rt != 0 {
		t.Errorf("instr 0 = %+v", p.Instrs[0])
	}
	if p.Instrs[1].Rd != 31 || p.Instrs[1].Rs != 31 {
		t.Errorf("instr 1 = %+v", p.Instrs[1])
	}
}

func TestCommentsStyles(t *testing.T) {
	c := run(t, `
main:  li $t0, 1   # hash
       li $t1, 2   ; semicolon
       li $t2, 3   // slashes
       halt
`)
	if c.Reg[8] != 1 || c.Reg[9] != 2 || c.Reg[10] != 3 {
		t.Fatal("comments corrupted operands")
	}
}

func TestEntryDefaultsToZero(t *testing.T) {
	p, err := Assemble("start: halt\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry() != 0 {
		t.Fatalf("Entry = %d, want 0 without main", p.Entry())
	}
}

func TestEntryMainLabel(t *testing.T) {
	p, err := Assemble(`
sub:    jr $ra
main:   halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry() != 1 {
		t.Fatalf("Entry = %d, want 1", p.Entry())
	}
}

func TestNegativeDisplacement(t *testing.T) {
	c := run(t, `
main:   li  $t0, 10
        li  $t1, 77
        sw  $t1, -2($t0)    # mem[8]
        lw  $t2, -2($t0)
        out $t2
        halt
`)
	if len(c.Out) != 1 || c.Out[0] != 77 {
		t.Fatalf("Out = %v", c.Out)
	}
	if v, _ := c.Mem.Load(8); v != 77 {
		t.Fatalf("mem[8] = %d, want 77", v)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown instruction", "main: frob $t0, $t1\n"},
		{"unknown directive", ".bss\n"},
		{"bad register", "main: add $t0, $zz, $t1\n"},
		{"register out of range", "main: add $t0, $32, $t1\n"},
		{"wrong operand count", "main: add $t0, $t1\n"},
		{"undefined branch label", "main: beq $t0, $t1, nowhere\n"},
		{"undefined word label", ".data\nx: .word nowhere\n.text\nmain: halt\n"},
		{"duplicate label", "a: halt\na: halt\n"},
		{"word outside data", "main: .word 1\n"},
		{"space outside data", "main: .space 4\n"},
		{"bad space count", ".data\nb: .space -1\n"},
		{"instruction in data", ".data\nadd $t0, $t1, $t2\n"},
		{"imm out of range", "main: addi $t0, $t0, 40000\n"},
		{"shift out of range", "main: sll $t0, $t0, 33\n"},
		{"bad memory operand", "main: lw $t0, $t1\n"},
		{"branch to data label", ".data\nd: .word 1\n.text\nmain: beq $0, $0, d\n"},
		{"empty word list", ".data\nw: .word\n.text\nmain: halt\n"},
		{"lui out of range", "main: lui $t0, 65536\n"},
	}
	for _, c := range cases {
		if _, err := Assemble(c.src); err == nil {
			t.Errorf("%s: assembled without error", c.name)
		} else if _, ok := err.(*Error); !ok {
			t.Errorf("%s: error %v is not *asm.Error", c.name, err)
		}
	}
}

func TestErrorCarriesLine(t *testing.T) {
	_, err := Assemble("main: halt\n\n frob\n")
	aerr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error %v is not *asm.Error", err)
	}
	if aerr.Line != 3 {
		t.Fatalf("Line = %d, want 3", aerr.Line)
	}
	if !strings.Contains(aerr.Error(), "line 3") {
		t.Fatalf("Error() = %q", aerr.Error())
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAssemble did not panic")
		}
	}()
	MustAssemble("bogus!\n")
}

func TestNewCPUGrowsMemoryToData(t *testing.T) {
	p, err := Assemble(`
        .data
big:    .space 100
        .text
main:   halt
`)
	if err != nil {
		t.Fatal(err)
	}
	c := p.NewCPU(10)
	if c.Mem.Size() < 100 {
		t.Fatalf("memory %d words, want >= data segment 100", c.Mem.Size())
	}
}

func TestAllInstructionsEncodable(t *testing.T) {
	// Every instruction the assembler can emit must survive Encode/Decode.
	p, err := Assemble(`
        .data
v:      .word 1
        .text
main:   add $1,$2,$3
        sub $1,$2,$3
        and $1,$2,$3
        or $1,$2,$3
        xor $1,$2,$3
        nor $1,$2,$3
        slt $1,$2,$3
        sltu $1,$2,$3
        sllv $1,$2,$3
        srlv $1,$2,$3
        srav $1,$2,$3
        mul $1,$2,$3
        addi $1,$2,-5
        andi $1,$2,5
        ori $1,$2,5
        xori $1,$2,5
        slti $1,$2,-5
        sll $1,$2,5
        srl $1,$2,5
        sra $1,$2,5
        lui $1,5
        lw $1,4($2)
        sw $1,-4($2)
        beq $1,$2,main
        bne $1,$2,main
        blt $1,$2,main
        bge $1,$2,main
        j main
        jal main
        jr $ra
        jalr $1,$2
        out $1
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range p.Instrs {
		w, err := vm.Encode(in)
		if err != nil {
			t.Errorf("instr %d (%s): encode: %v", i, in, err)
			continue
		}
		got, err := vm.Decode(w)
		if err != nil || got != in {
			t.Errorf("instr %d (%s): round trip -> %v, %v", i, in, got, err)
		}
	}
}
