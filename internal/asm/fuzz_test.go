package asm

import (
	"testing"

	"github.com/example/cachedse/internal/vm"
)

// FuzzAssemble checks that the assembler never panics and that every
// program it accepts is fully encodable and safely executable under a
// bounded VM (faults are fine; crashes are not).
func FuzzAssemble(f *testing.F) {
	f.Add("main: halt\n")
	f.Add(".data\nx: .word 1,2,3\n.text\nmain: la $t0, x\n lw $t1, 0($t0)\n halt\n")
	f.Add("loop: addi $t0, $t0, 1\n bne $t0, $t1, loop\n halt\n")
	f.Add(".space -1\n")
	f.Add("a: a: halt")
	f.Add("main: li $t0, 0x7fffffff\n beq $t0, $t0, main\n")
	f.Add("main: jr $ra")
	f.Add(": : :")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return
		}
		for i, in := range p.Instrs {
			if _, err := vm.Encode(in); err != nil {
				t.Fatalf("accepted program has unencodable instruction %d (%v): %v", i, in, err)
			}
		}
		if len(p.Data) > 1<<22 {
			t.Skip("oversized data segment")
		}
		cpu := p.NewCPU(1024)
		_ = cpu.Run(10_000) // faults allowed; panics are bugs
	})
}
