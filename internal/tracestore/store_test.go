package tracestore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func mustPut(t *testing.T, s *Store, key, data string) Entry {
	t.Helper()
	e, err := s.Put(key, strings.NewReader(data))
	if err != nil {
		t.Fatalf("Put(%q): %v", key, err)
	}
	return e
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := mustPut(t, s, "trace/abc", "hello trace")
	if e.Size != int64(len("hello trace")) {
		t.Fatalf("Size = %d, want %d", e.Size, len("hello trace"))
	}
	got, err := s.Get("trace/abc")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello trace" {
		t.Fatalf("Get = %q", got)
	}
	if _, err := s.Get("trace/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: err = %v, want ErrNotFound", err)
	}
	if _, err := s.Put("", strings.NewReader("x")); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestDedupAndRefcounts(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a := mustPut(t, s, "k1", "shared bytes")
	b := mustPut(t, s, "k2", "shared bytes")
	if a.Object != b.Object {
		t.Fatalf("identical content got distinct objects %s / %s", a.Object, b.Object)
	}
	if s.Len() != 2 || s.Objects() != 1 {
		t.Fatalf("Len=%d Objects=%d, want 2/1", s.Len(), s.Objects())
	}
	// Deleting one key keeps the object alive for the other.
	if ok, err := s.Delete("k1"); !ok || err != nil {
		t.Fatalf("Delete k1: %v %v", ok, err)
	}
	if got, err := s.Get("k2"); err != nil || string(got) != "shared bytes" {
		t.Fatalf("k2 after deleting k1: %q, %v", got, err)
	}
	// Last reference unlinks the object file.
	if ok, err := s.Delete("k2"); !ok || err != nil {
		t.Fatalf("Delete k2: %v %v", ok, err)
	}
	if s.Objects() != 0 {
		t.Fatalf("Objects = %d after deleting both keys", s.Objects())
	}
	if _, err := os.Stat(s.objectPath(a.Object)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("object file survived last delete: %v", err)
	}
	if ok, _ := s.Delete("k2"); ok {
		t.Fatal("deleting an absent key reported true")
	}
}

func TestRepointKey(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	old := mustPut(t, s, "k", "version one")
	neu := mustPut(t, s, "k", "version two")
	if old.Object == neu.Object {
		t.Fatal("distinct content shares an object")
	}
	if got, _ := s.Get("k"); string(got) != "version two" {
		t.Fatalf("Get = %q", got)
	}
	// The orphaned old object is gone.
	if _, err := os.Stat(s.objectPath(old.Object)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("old object survived repoint: %v", err)
	}
	if s.Len() != 1 || s.Objects() != 1 {
		t.Fatalf("Len=%d Objects=%d, want 1/1", s.Len(), s.Objects())
	}
}

func TestPersistenceAcrossOpen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "trace/one", "first")
	mustPut(t, s, "result/one", "second")

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("reopened Len = %d, want 2", s2.Len())
	}
	if got, err := s2.Get("trace/one"); err != nil || string(got) != "first" {
		t.Fatalf("reopened Get trace/one = %q, %v", got, err)
	}
	if got, err := s2.Get("result/one"); err != nil || string(got) != "second" {
		t.Fatalf("reopened Get result/one = %q, %v", got, err)
	}
}

func TestListPrefixAndOrder(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "trace/a", "1")
	mustPut(t, s, "trace/b", "2")
	mustPut(t, s, "result/a", "3")

	traces := s.List("trace/")
	if len(traces) != 2 || traces[0].Key != "trace/a" || traces[1].Key != "trace/b" {
		t.Fatalf("List(trace/) = %+v", traces)
	}
	if all := s.List(""); len(all) != 3 {
		t.Fatalf("List(\"\") = %d entries", len(all))
	}
	if none := s.List("nope/"); len(none) != 0 {
		t.Fatalf("List(nope/) = %+v", none)
	}
	if e, ok := s.Stat("trace/a"); !ok || e.Size != 1 {
		t.Fatalf("Stat(trace/a) = %+v, %v", e, ok)
	}
}

func TestCorruptionDetectedOnGet(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := mustPut(t, s, "k", "precious payload")

	// Bit-flip the object on disk behind the store's back.
	path := s.objectPath(e.Object)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[3] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var ce *CorruptObjectError
	if _, err := s.Get("k"); !errors.As(err, &ce) {
		t.Fatalf("Get on flipped object: err = %v, want *CorruptObjectError", err)
	}
	if ce.Key != "k" || ce.Object != e.Object {
		t.Fatalf("corrupt error fields: %+v", ce)
	}

	// Truncation is also caught.
	if err := os.WriteFile(path, raw[:4], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k"); !errors.As(err, &ce) {
		t.Fatalf("Get on truncated object: err = %v, want *CorruptObjectError", err)
	}
}

func TestOpenRepairsCrashDebris(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keep := mustPut(t, s, "keep", "survivor")
	lost := mustPut(t, s, "lost", "victim")

	// Simulate the three crash shapes:
	// (a) an interrupted spool in tmp/,
	if err := os.WriteFile(filepath.Join(dir, tmpDir, "put-999-1"), []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}
	// (b) an object that landed without its manifest entry,
	orphan := filepath.Join(dir, objectsDir, "feedfacefeedfacefeedfacefeedface")
	if err := os.WriteFile(orphan, []byte("unreferenced"), 0o644); err != nil {
		t.Fatal(err)
	}
	// (c) a manifest entry whose object vanished.
	if err := os.Remove(s.objectPath(lost.Object)); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := s2.Get("keep"); err != nil || string(got) != "survivor" {
		t.Fatalf("keep after repair: %q, %v", got, err)
	}
	if _, err := s2.Get("lost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("lost after repair: err = %v, want ErrNotFound", err)
	}
	if _, err := os.Stat(orphan); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("orphaned object survived repair")
	}
	tmps, err := os.ReadDir(filepath.Join(dir, tmpDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Fatalf("tmp/ not emptied: %d files", len(tmps))
	}
	if s2.Len() != 1 || s2.Objects() != 1 {
		t.Fatalf("after repair Len=%d Objects=%d, want 1/1", s2.Len(), s2.Objects())
	}
	_ = keep

	// The repair is durable: a third Open sees the cleaned state.
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Len() != 1 {
		t.Fatalf("third open Len = %d, want 1", s3.Len())
	}
}

// A manifest torn to garbage (a filesystem that reneged on rename
// durability) must not brick the store: Open boots it empty, sets the bad
// manifest aside, and — crucially — does not GC the now-unreferenced
// objects, since losing the index is recoverable but deleting the data is
// not.
func TestOpenSurvivesCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := mustPut(t, s, "trace/x", "survives the torn manifest")

	manifest := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manifest, make([]byte, len(raw)), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open over zeroed manifest: %v", err)
	}
	if s2.Len() != 0 {
		t.Fatalf("Len = %d after corrupt manifest, want 0", s2.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName+".corrupt")); err != nil {
		t.Fatalf("corrupt manifest not set aside: %v", err)
	}
	if _, err := os.Stat(s2.objectPath(e.Object)); err != nil {
		t.Fatalf("object GC'd on the corrupt-manifest boot: %v", err)
	}
	// The store is fully usable again.
	mustPut(t, s2, "trace/y", "fresh entry")
	if got, err := s2.Get("trace/y"); err != nil || string(got) != "fresh entry" {
		t.Fatalf("Get after recovery: %q, %v", got, err)
	}
	// And the next clean Open sweeps the leftovers as ordinary orphans.
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(s3.objectPath(e.Object)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("orphan survived the following clean open: %v", err)
	}
}

func TestConcurrentPutGetDelete(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				key := fmt.Sprintf("k%d-%d", w, i%5)
				payload := bytes.Repeat([]byte{byte(w)}, 10+i)
				if _, err := s.Put(key, bytes.NewReader(payload)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if data, err := s.Get(key); err == nil && len(data) == 0 {
					t.Errorf("Get returned empty payload")
					return
				}
				if i%7 == 0 {
					if _, err := s.Delete(key); err != nil {
						t.Errorf("Delete: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// The survivors are all still readable and verify.
	for _, e := range s.List("") {
		if _, err := s.Get(e.Key); err != nil {
			t.Fatalf("post-stress Get(%q): %v", e.Key, err)
		}
	}
}
