//go:build unix

package tracestore

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and shared: the kernel serves
// the bytes straight from the page cache, and unlinking the file later
// does not invalidate the mapping.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping produced by mmapFile.
func munmapFile(data []byte) error {
	return syscall.Munmap(data)
}
