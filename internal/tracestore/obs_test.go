package tracestore

import (
	"context"
	"strings"
	"testing"

	"github.com/example/cachedse/internal/obs"
)

// collectNames runs fn under a fresh recorder and returns the recorded
// span names in end order.
func collectNames(t *testing.T, fn func(ctx context.Context)) []string {
	t.Helper()
	rec := obs.NewRecorder(0)
	fn(obs.WithRecorder(context.Background(), rec))
	tr := rec.Export()
	names := make([]string, len(tr.Spans))
	for i, s := range tr.Spans {
		names[i] = s.Name
	}
	return names
}

func TestStoreContextOpsRecordSpans(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	names := collectNames(t, func(ctx context.Context) {
		if _, err := st.PutContext(ctx, "k1", strings.NewReader("payload")); err != nil {
			t.Fatal(err)
		}
		data, err := st.GetContext(ctx, "k1")
		if err != nil || string(data) != "payload" {
			t.Fatalf("get: %q, %v", data, err)
		}
		if had, err := st.DeleteContext(ctx, "k1"); err != nil || !had {
			t.Fatalf("delete: %v, %v", had, err)
		}
	})
	got := strings.Join(names, " ")
	// store.verify is recorded as a child of store.get and ends first.
	want := "store.put store.verify store.get store.delete"
	if got != want {
		t.Fatalf("span names = %q, want %q", got, want)
	}
}

func TestStoreGetContextVerifyIsChild(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(0)
	ctx := obs.WithRecorder(context.Background(), rec)
	if _, err := st.PutContext(ctx, "k", strings.NewReader("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.GetContext(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	roots := rec.Export().Tree()
	var get *obs.Node
	for _, r := range roots {
		if r.Name == "store.get" {
			get = r
		}
	}
	if get == nil {
		t.Fatalf("no store.get root in %+v", roots)
	}
	if len(get.Children) != 1 || get.Children[0].Name != "store.verify" {
		t.Fatalf("store.get children = %+v, want one store.verify", get.Children)
	}
	if ok, _ := get.Children[0].Attrs["ok"].(bool); !ok {
		t.Fatalf("verify child attrs = %v, want ok=true", get.Children[0].Attrs)
	}
}

func TestStoreContextOpsNoopWithoutRecorder(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := st.PutContext(ctx, "k", strings.NewReader("v")); err != nil {
		t.Fatal(err)
	}
	if data, err := st.GetContext(ctx, "k"); err != nil || string(data) != "v" {
		t.Fatalf("get without recorder: %q, %v", data, err)
	}
}

func TestOpenContextRecordsRepairSpan(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put("k", strings.NewReader("v")); err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(0)
	ctx := obs.WithRecorder(context.Background(), rec)
	st2, err := OpenContext(ctx, dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != 1 {
		t.Fatalf("reopened store has %d entries, want 1", st2.Len())
	}
	tr := rec.Export()
	if len(tr.Spans) != 1 || tr.Spans[0].Name != "store.open" {
		t.Fatalf("spans = %+v, want one store.open", tr.Spans)
	}
	if got := tr.Spans[0].Attrs["entries"]; got != 1 {
		t.Fatalf("store.open entries attr = %v, want 1", got)
	}
}
