package tracestore

import (
	"context"
	"io"

	"github.com/example/cachedse/internal/obs"
)

// Context-carrying variants of the store operations. Each records one
// span ("store.put", "store.get", "store.delete", "store.open") into the
// recorder carried by ctx; GetContext additionally records the digest
// verification as a "store.verify" child. With no recorder on ctx they
// cost one context lookup over the plain methods.

// PutContext is Put, recorded as a "store.put" span.
func (s *Store) PutContext(ctx context.Context, key string, r io.Reader) (Entry, error) {
	_, span := obs.StartSpan(ctx, "store.put")
	e, err := s.Put(key, r)
	if span != nil {
		span.SetAttr("key", key)
		span.SetAttr("bytes", e.Size)
		if err != nil {
			span.SetAttr("error", err.Error())
		}
		span.End()
	}
	return e, err
}

// GetContext is Get, recorded as a "store.get" span with a "store.verify"
// child covering the content-digest check.
func (s *Store) GetContext(ctx context.Context, key string) ([]byte, error) {
	_, span := obs.StartSpan(ctx, "store.get")
	data, err := s.getSpan(key, span)
	if span != nil {
		span.SetAttr("key", key)
		span.SetAttr("bytes", len(data))
		if err != nil {
			span.SetAttr("error", err.Error())
		}
		span.End()
	}
	return data, err
}

// OpenMappedContext is OpenMapped, recorded as a "store.mmap" span with a
// "store.verify" child covering the content-digest check.
func (s *Store) OpenMappedContext(ctx context.Context, key string) (*MappedObject, error) {
	_, span := obs.StartSpan(ctx, "store.mmap")
	m, err := s.openMappedSpan(key, span)
	if span != nil {
		span.SetAttr("key", key)
		if m != nil {
			span.SetAttr("bytes", m.Size())
			span.SetAttr("mapped", m.Mapped())
		}
		if err != nil {
			span.SetAttr("error", err.Error())
		}
		span.End()
	}
	return m, err
}

// DeleteContext is Delete, recorded as a "store.delete" span.
func (s *Store) DeleteContext(ctx context.Context, key string) (bool, error) {
	_, span := obs.StartSpan(ctx, "store.delete")
	had, err := s.Delete(key)
	if span != nil {
		span.SetAttr("key", key)
		span.SetAttr("existed", had)
		if err != nil {
			span.SetAttr("error", err.Error())
		}
		span.End()
	}
	return had, err
}

// OpenContext is Open, recorded as a "store.open" span. The crash-repair
// sweep Open performs (temp removal, dangling-entry drop, orphan GC) is
// what dominates a post-crash boot, so the span's duration is effectively
// the repair cost.
func OpenContext(ctx context.Context, dir string) (*Store, error) {
	_, span := obs.StartSpan(ctx, "store.open")
	st, err := Open(dir)
	if span != nil {
		span.SetAttr("dir", dir)
		if st != nil {
			span.SetAttr("entries", st.Len())
			span.SetAttr("objects", st.Objects())
		}
		if err != nil {
			span.SetAttr("error", err.Error())
		}
		span.End()
	}
	return st, err
}
