// Package tracestore is a crash-safe, content-addressed on-disk store for
// traces and exploration results. Objects live under objects/<digest>,
// where the digest is computed over the object's bytes while they stream
// through Put — the same bytes are never stored twice, no matter how many
// logical keys point at them. A small manifest maps logical keys (a trace
// digest, a result-cache key) to objects and carries per-object reference
// counts; keys are deleted individually, and an object is unlinked only
// when its last key goes. Writes spool into tmp/ and reach their final
// name by atomic rename — spools and the manifest are fsynced before the
// rename (and the parent directory after), so the rename publishes
// durable bytes, not page cache — and Open repairs whatever a crash left
// behind (orphaned temp files, objects no key references, keys whose
// object vanished) — so a kill -9 at any point loses at most the entry
// being written, never the store. Should a filesystem renege anyway and
// leave the manifest unparsable, Open sets it aside and boots the store
// empty rather than refusing to start.
package tracestore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/example/cachedse/internal/faultinject"
	"github.com/example/cachedse/internal/obs"
)

// Entry describes one logical key in the store.
type Entry struct {
	// Key is the caller's logical name for the object.
	Key string `json:"key"`
	// Object is the content digest the key resolves to.
	Object string `json:"object"`
	// Size is the object's byte length.
	Size int64 `json:"size"`
	// Created is when the key was first written.
	Created time.Time `json:"created"`
}

// ErrNotFound reports a key the store does not hold.
var ErrNotFound = errors.New("tracestore: key not found")

// CorruptObjectError reports an object whose bytes no longer match their
// digest (bit rot, truncation, a stray write). Get returns it instead of
// the damaged bytes; the caller decides whether to delete and recompute.
type CorruptObjectError struct {
	Key    string
	Object string
	Reason string
}

func (e *CorruptObjectError) Error() string {
	return fmt.Sprintf("tracestore: object %s (key %q) corrupt: %s", e.Object, e.Key, e.Reason)
}

// Fallback fetches a key's bytes from somewhere else — in a cluster, the
// other owner replica — when the local store misses the key or fails its
// digest verification. A successful fetch is re-persisted under the key
// (read-repair) and served; a failed fetch surfaces the original local
// error, so a store without working replicas behaves exactly as before.
type Fallback func(key string) ([]byte, error)

// Store is the on-disk store. All methods are safe for concurrent use.
type Store struct {
	dir string

	fallback atomic.Pointer[Fallback]
	repairs  atomic.Int64

	mu      sync.Mutex
	entries map[string]Entry // key -> entry
	refs    map[string]int   // object digest -> number of keys
	tmpSeq  int
}

// SetFallback installs (or, with nil, removes) the read-repair fetch
// hook consulted by Get and OpenMapped on a miss or a corrupt object.
func (s *Store) SetFallback(f Fallback) {
	if f == nil {
		s.fallback.Store(nil)
		return
	}
	s.fallback.Store(&f)
}

// Repairs returns how many reads have been healed through the fallback.
func (s *Store) Repairs() int64 { return s.repairs.Load() }

// repairFrom consults the fallback after a local miss or verification
// failure. On a successful fetch the bytes are re-persisted under key —
// repointing a corrupt entry at fresh content, or recreating a missing
// one — and returned; otherwise the original local error stands.
func (s *Store) repairFrom(key string, cause error) ([]byte, error) {
	fp := s.fallback.Load()
	if fp == nil {
		return nil, cause
	}
	data, err := (*fp)(key)
	if err != nil {
		return nil, cause
	}
	s.repairs.Add(1)
	// A corrupt object blocks the re-persist below: Put dedups on the
	// object path existing, and the damaged file sits at exactly that
	// path. Unlink it first so the repaired bytes actually land on disk.
	var ce *CorruptObjectError
	if errors.As(cause, &ce) {
		s.mu.Lock()
		_ = os.Remove(s.objectPath(ce.Object))
		s.mu.Unlock()
	}
	// The bytes are good even if re-persisting them fails; serve them and
	// let a later read retry the repair.
	_, _ = s.Put(key, bytes.NewReader(data))
	return data, nil
}

const (
	objectsDir   = "objects"
	tmpDir       = "tmp"
	manifestName = "manifest.json"
)

// manifest is the serialized index. Refcounts are not stored — they are
// recomputed from the entries on load, which makes the manifest impossible
// to corrupt into an inconsistent refcount state.
type manifest struct {
	Version int              `json:"version"`
	Entries map[string]Entry `json:"entries"`
}

// Open loads (or initialises) the store rooted at dir and repairs any
// leftovers from an interrupted run: temp files are removed, manifest
// entries whose object is missing are dropped, and objects no entry
// references are unlinked.
func Open(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, objectsDir), filepath.Join(dir, tmpDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("tracestore: %w", err)
		}
	}
	s := &Store{
		dir:     dir,
		entries: make(map[string]Entry),
		refs:    make(map[string]int),
	}
	keepOrphans := false
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Fresh store.
	case err != nil:
		return nil, fmt.Errorf("tracestore: reading manifest: %w", err)
	default:
		var m manifest
		if err := json.Unmarshal(data, &m); err != nil {
			// A torn manifest (a filesystem that reneged on the rename
			// durability) must not brick the store: set it aside for
			// forensics and boot empty. With no entries every object
			// would look unreferenced, so repair keeps them this boot —
			// losing the index is recoverable, GC'ing the data is not.
			_ = os.Rename(filepath.Join(dir, manifestName),
				filepath.Join(dir, manifestName+".corrupt"))
			keepOrphans = true
		} else {
			for key, e := range m.Entries {
				e.Key = key
				s.entries[key] = e
				s.refs[e.Object]++
			}
		}
	}
	if err := s.repair(keepOrphans); err != nil {
		return nil, err
	}
	return s, nil
}

// repair reconciles the directory tree with the manifest after a crash.
// keepOrphans suppresses the unreferenced-object sweep for the boot after
// a corrupt manifest, when "unreferenced" just means the index was lost.
func (s *Store) repair(keepOrphans bool) error {
	// 1. Temp spool files are by definition incomplete: remove them.
	tmps, err := os.ReadDir(filepath.Join(s.dir, tmpDir))
	if err != nil {
		return fmt.Errorf("tracestore: scanning tmp: %w", err)
	}
	for _, de := range tmps {
		_ = os.Remove(filepath.Join(s.dir, tmpDir, de.Name()))
	}
	// 2. Entries whose object vanished cannot be served: drop them.
	dropped := false
	for key, e := range s.entries {
		if _, err := os.Stat(s.objectPath(e.Object)); err != nil {
			delete(s.entries, key)
			if s.refs[e.Object]--; s.refs[e.Object] <= 0 {
				delete(s.refs, e.Object)
			}
			dropped = true
		}
	}
	// 3. Objects no entry references (a crash between the object rename
	// and the manifest rename) are garbage: unlink them.
	if !keepOrphans {
		objs, err := os.ReadDir(filepath.Join(s.dir, objectsDir))
		if err != nil {
			return fmt.Errorf("tracestore: scanning objects: %w", err)
		}
		for _, de := range objs {
			if s.refs[de.Name()] == 0 {
				_ = os.Remove(filepath.Join(s.dir, objectsDir, de.Name()))
			}
		}
	}
	if dropped {
		return s.saveManifestLocked()
	}
	return nil
}

func (s *Store) objectPath(digest string) string {
	return filepath.Join(s.dir, objectsDir, digest)
}

// digestOf is the store's content address: SHA-256 truncated to 128 bits,
// hex — the same shape the service uses for trace digests.
func digestOf(h []byte) string { return hex.EncodeToString(h[:16]) }

// Put streams r into the store under key, returning the entry. The bytes
// are hashed as they spool; if an identical object already exists the
// spool is discarded and the key simply references the existing object.
// Re-putting an existing key atomically repoints it.
func (s *Store) Put(key string, r io.Reader) (Entry, error) {
	if key == "" {
		return Entry{}, errors.New("tracestore: empty key")
	}
	if err := faultinject.Hit("tracestore.put"); err != nil {
		return Entry{}, fmt.Errorf("tracestore: %w", err)
	}
	s.mu.Lock()
	s.tmpSeq++
	spool := filepath.Join(s.dir, tmpDir, fmt.Sprintf("put-%d-%d", os.Getpid(), s.tmpSeq))
	s.mu.Unlock()

	f, err := os.Create(spool)
	if err != nil {
		return Entry{}, fmt.Errorf("tracestore: %w", err)
	}
	h := sha256.New()
	size, err := io.Copy(io.MultiWriter(f, h), r)
	if err == nil {
		err = faultinject.Hit("tracestore.fsync")
	}
	if err == nil {
		// The rename below must publish durable bytes: without the fsync
		// a power loss after the rename can leave a fully-named object
		// holding zeroed pages.
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(spool)
		return Entry{}, fmt.Errorf("tracestore: spooling %q: %w", key, err)
	}
	digest := digestOf(h.Sum(nil))

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := os.Stat(s.objectPath(digest)); err == nil {
		// Deduplicated: the bytes are already durable.
		_ = os.Remove(spool)
	} else {
		err := faultinject.Hit("tracestore.rename")
		if err == nil {
			err = os.Rename(spool, s.objectPath(digest))
		}
		if err != nil {
			_ = os.Remove(spool)
			return Entry{}, fmt.Errorf("tracestore: publishing object: %w", err)
		}
		if err := syncDir(filepath.Join(s.dir, objectsDir)); err != nil {
			return Entry{}, fmt.Errorf("tracestore: publishing object: %w", err)
		}
	}
	e := Entry{Key: key, Object: digest, Size: size, Created: time.Now().UTC()}
	old, existed := s.entries[key]
	s.entries[key] = e
	s.refs[digest]++
	if existed {
		s.releaseLocked(old.Object)
	}
	if err := s.saveManifestLocked(); err != nil {
		return Entry{}, err
	}
	return e, nil
}

// releaseLocked drops one reference to an object, unlinking it at zero.
func (s *Store) releaseLocked(digest string) {
	if s.refs[digest]--; s.refs[digest] <= 0 {
		delete(s.refs, digest)
		_ = os.Remove(s.objectPath(digest))
	}
}

// Get returns the object bytes for key, verifying the content digest
// before handing anything back: a damaged object yields a
// *CorruptObjectError, never silently wrong bytes. With a Fallback
// installed, a miss or a corrupt object is repaired from it first.
func (s *Store) Get(key string) ([]byte, error) {
	return s.getSpan(key, nil)
}

// GetLocal is Get without the read-repair fallback: strictly what this
// node holds. It is what a replica serves to its peers — a peer-to-peer
// fetch must never recurse into another fetch.
func (s *Store) GetLocal(key string) ([]byte, error) {
	return s.getVerified(key, nil)
}

// getSpan is Get with an optional parent span; when one is given the
// digest verification is recorded beneath it as a "store.verify" child.
func (s *Store) getSpan(key string, span *obs.Span) ([]byte, error) {
	data, err := s.getVerified(key, span)
	if err != nil {
		return s.repairFrom(key, err)
	}
	return data, nil
}

func (s *Store) getVerified(key string, span *obs.Span) ([]byte, error) {
	s.mu.Lock()
	e, ok := s.entries[key]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if err := faultinject.Hit("tracestore.get"); err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	data, err := os.ReadFile(s.objectPath(e.Object))
	if err != nil {
		return nil, &CorruptObjectError{Key: key, Object: e.Object, Reason: err.Error()}
	}
	vstart := time.Now()
	sum := sha256.Sum256(data)
	got := digestOf(sum[:])
	span.Child("store.verify", vstart, time.Since(vstart),
		obs.Attr{Key: "bytes", Value: len(data)},
		obs.Attr{Key: "ok", Value: got == e.Object})
	if got != e.Object {
		return nil, &CorruptObjectError{
			Key: key, Object: e.Object,
			Reason: fmt.Sprintf("content hashes to %s", got),
		}
	}
	return data, nil
}

// Stat returns the entry for key without touching the object bytes.
func (s *Store) Stat(key string) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	return e, ok
}

// Delete removes key, unlinking its object if this was the last reference.
// Deleting an absent key reports false without error.
func (s *Store) Delete(key string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return false, nil
	}
	delete(s.entries, key)
	s.releaseLocked(e.Object)
	return true, s.saveManifestLocked()
}

// List returns the entries whose key starts with prefix (the empty prefix
// lists everything), oldest first — the order a warm-start wants, so the
// newest entries land last (and therefore most-recently-used) in an LRU.
func (s *Store) List(prefix string) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, 0, len(s.entries))
	for key, e := range s.entries {
		if strings.HasPrefix(key, prefix) {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Created.Equal(out[j].Created) {
			return out[i].Created.Before(out[j].Created)
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Len returns the number of keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Objects returns the number of distinct stored objects (<= Len when keys
// share content).
func (s *Store) Objects() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.refs)
}

// saveManifestLocked writes the manifest atomically (temp + rename).
// Callers hold s.mu.
func (s *Store) saveManifestLocked() error {
	if err := faultinject.Hit("tracestore.manifest"); err != nil {
		return fmt.Errorf("tracestore: writing manifest: %w", err)
	}
	m := manifest{Version: 1, Entries: s.entries}
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return fmt.Errorf("tracestore: encoding manifest: %w", err)
	}
	s.tmpSeq++
	tmp := filepath.Join(s.dir, tmpDir, fmt.Sprintf("manifest-%d-%d", os.Getpid(), s.tmpSeq))
	if err := writeFileSync(tmp, data); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("tracestore: writing manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, manifestName)); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("tracestore: publishing manifest: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return fmt.Errorf("tracestore: publishing manifest: %w", err)
	}
	return nil
}

// writeFileSync writes data to path and fsyncs it before returning, so a
// following rename publishes durable bytes rather than page cache.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncDir fsyncs a directory, making a rename into it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
