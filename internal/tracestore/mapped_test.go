package tracestore

import (
	"bytes"
	"errors"
	"io"
	"os"
	"runtime"
	"testing"

	"github.com/example/cachedse/internal/trace"
)

func TestOpenMappedRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const payload = "mmap me if you can"
	mustPut(t, s, "trace/m", payload)
	m, err := s.OpenMapped("trace/m")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if got := string(m.Bytes()); got != payload {
		t.Fatalf("Bytes = %q, want %q", got, payload)
	}
	if m.Size() != int64(len(payload)) {
		t.Fatalf("Size = %d, want %d", m.Size(), len(payload))
	}
	if runtime.GOOS == "linux" && !m.Mapped() {
		t.Fatal("expected a true mapping on linux")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestOpenMappedReadAt(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "k", "0123456789")
	m, err := s.OpenMapped("k")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	buf := make([]byte, 4)
	if n, err := m.ReadAt(buf, 3); err != nil || string(buf[:n]) != "3456" {
		t.Fatalf("ReadAt(3) = %q, %v", buf[:n], err)
	}
	if n, err := m.ReadAt(buf, 8); err != io.EOF || string(buf[:n]) != "89" {
		t.Fatalf("ReadAt(8) = %q, %v; want short read + EOF", buf[:n], err)
	}
	if _, err := m.ReadAt(buf, 10); err != io.EOF {
		t.Fatalf("ReadAt(10) err = %v, want EOF", err)
	}
	if _, err := m.ReadAt(buf, -1); err == nil {
		t.Fatal("negative offset accepted")
	}
	_ = m.Close()
	if _, err := m.ReadAt(buf, 0); err == nil {
		t.Fatal("read after Close accepted")
	}
}

func TestOpenMappedMissingKey(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.OpenMapped("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestOpenMappedCorruptObject(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := mustPut(t, s, "trace/x", "original bytes of some length")
	if err := os.WriteFile(s.objectPath(e.Object), []byte("tampered bytes of some length"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = s.OpenMapped("trace/x")
	var ce *CorruptObjectError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CorruptObjectError", err)
	}
}

// The env toggle must force the heap-read fallback with identical
// semantics, mapping included in the degraded direction only.
func TestOpenMappedNoMmapFallback(t *testing.T) {
	t.Setenv(NoMmapEnv, "1")
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "k", "fallback bytes")
	m, err := s.OpenMapped("k")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Mapped() {
		t.Fatal("Mapped() = true with fallback forced")
	}
	if string(m.Bytes()) != "fallback bytes" {
		t.Fatalf("Bytes = %q", m.Bytes())
	}
}

// A mapping taken before Delete stays readable: the unlinked object's
// pages live until the mapping closes.
func TestOpenMappedSurvivesDelete(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "k", "bytes that outlive the key")
	m, err := s.OpenMapped("k")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if had, err := s.Delete("k"); err != nil || !had {
		t.Fatalf("Delete = %v, %v", had, err)
	}
	if string(m.Bytes()) != "bytes that outlive the key" {
		t.Fatalf("Bytes after delete = %q", m.Bytes())
	}
}

// validCTZ1 encodes a small trace as ctz1 bytes for the fuzz corpus.
func validCTZ1(tb testing.TB) []byte {
	tb.Helper()
	tr := trace.New(0)
	for i := 0; i < 300; i++ {
		tr.Append(trace.Ref{Addr: uint32(i%7) * 64, Kind: trace.Kind(i % 3)})
	}
	var buf bytes.Buffer
	if err := trace.WriteCTZ1(&buf, tr); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzMappedCTZ1 stores arbitrary (often corrupted-ctz1) bytes — the
// store digest is computed over those exact bytes, so the store-level
// verification passes and the damage reaches the decoder — then decodes
// through the mmap'd zero-copy path. The contract under fuzz: a clean
// decode or a typed *trace.CorruptError / *trace.LimitError, never a
// panic and never a silent half-result.
func FuzzMappedCTZ1(f *testing.F) {
	valid := validCTZ1(f)
	f.Add(valid)
	f.Add([]byte("CTZ1"))
	f.Add([]byte{})
	for i := 0; i < len(valid); i += 37 {
		mut := bytes.Clone(valid)
		mut[i] ^= 0x5a
		f.Add(mut)
	}
	f.Add(valid[:len(valid)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Put("trace/fuzz", bytes.NewReader(data)); err != nil {
			t.Fatal(err)
		}
		m, err := s.OpenMapped("trace/fuzz")
		if err != nil {
			t.Fatalf("OpenMapped over freshly put bytes: %v", err)
		}
		defer m.Close()
		d, err := trace.NewCTZ1BytesDecoder(m.Bytes(), trace.Limits{MaxRefs: 1 << 16})
		if err == nil {
			var arena trace.Arena
			d.DecodeInto(&arena)
			for {
				if _, err = d.Next(); err != nil {
					break
				}
			}
			if err == io.EOF {
				err = nil
			}
		}
		if err != nil {
			var ce *trace.CorruptError
			var le *trace.LimitError
			if !errors.As(err, &ce) && !errors.As(err, &le) {
				t.Fatalf("untyped decode error: %T %v", err, err)
			}
		}
	})
}

func TestFuzzMappedCTZ1Seeds(t *testing.T) {
	// Run the fuzz body over its seed corpus as a plain test, so the
	// corrupt-block / truncation / valid cases are covered in every `go
	// test` run, not only under -fuzz.
	valid := validCTZ1(t)
	cases := [][]byte{valid, []byte("CTZ1"), {}, valid[:len(valid)/2]}
	for i := 0; i < len(valid); i += 37 {
		mut := bytes.Clone(valid)
		mut[i] ^= 0x5a
		cases = append(cases, mut)
	}
	for i, data := range cases {
		s, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Put("trace/fuzz", bytes.NewReader(data)); err != nil {
			t.Fatal(err)
		}
		m, err := s.OpenMapped("trace/fuzz")
		if err != nil {
			t.Fatalf("case %d: OpenMapped: %v", i, err)
		}
		d, derr := trace.NewCTZ1BytesDecoder(m.Bytes(), trace.Limits{MaxRefs: 1 << 16})
		err = derr
		if err == nil {
			for {
				if _, err = d.Next(); err != nil {
					break
				}
			}
			if err == io.EOF {
				err = nil
			}
		}
		if err != nil {
			var ce *trace.CorruptError
			var le *trace.LimitError
			if !errors.As(err, &ce) && !errors.As(err, &le) {
				t.Fatalf("case %d: untyped decode error: %T %v", i, err, err)
			}
		}
		_ = m.Close()
	}
}
