package tracestore

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/example/cachedse/internal/faultinject"
	"github.com/example/cachedse/internal/obs"
)

// NoMmapEnv, when set to a non-empty value, forces OpenMapped onto the
// read-file fallback even where mmap is available. It exists for
// operational escape (a filesystem whose mappings misbehave) and so the
// fallback path stays exercised in CI rather than rotting untested.
const NoMmapEnv = "CACHEDSE_NO_MMAP"

// MappedObject is a verified, read-only view of one stored object's
// bytes. When the platform allows it the view is a memory mapping of the
// object file — the bytes never transit the Go heap, and a decoder
// slicing them (trace.NewCTZ1BytesDecoder) reads straight from the page
// cache. Otherwise it is a plain heap copy with the same interface.
//
// The view stays valid even if the key is Deleted while open: on Unix an
// unlinked-but-mapped file keeps its pages until the mapping goes. Close
// releases the mapping (or the copy) and is idempotent; using Bytes after
// Close is a caller bug, as with any mmap.
type MappedObject struct {
	data   []byte
	mapped bool
	closed bool
}

// Bytes returns the object's verified contents. The slice must not be
// written to (the pages may be mapped read-only — a write faults) and
// must not be used after Close.
func (m *MappedObject) Bytes() []byte { return m.data }

// Size returns the object's byte length.
func (m *MappedObject) Size() int64 { return int64(len(m.data)) }

// Mapped reports whether the view is a true memory mapping (false on the
// read-file fallback).
func (m *MappedObject) Mapped() bool { return m.mapped }

// ReadAt implements io.ReaderAt over the view, so callers written against
// file-like access work unchanged on either path.
func (m *MappedObject) ReadAt(p []byte, off int64) (int, error) {
	if m.closed {
		return 0, fmt.Errorf("tracestore: read of closed mapped object")
	}
	if off < 0 {
		return 0, fmt.Errorf("tracestore: negative offset %d", off)
	}
	if off >= int64(len(m.data)) {
		return 0, io.EOF
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Close releases the mapping (a no-op for the fallback copy beyond
// dropping the reference). Safe to call more than once.
func (m *MappedObject) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	data := m.data
	m.data = nil
	if m.mapped {
		return munmapFile(data)
	}
	return nil
}

// OpenMapped returns the object bytes for key as a MappedObject, verified
// against the content digest exactly like Get — a damaged object yields a
// *CorruptObjectError, never silently wrong bytes. Where the platform
// supports it (and NoMmapEnv is unset) the bytes are memory-mapped rather
// than read onto the heap; when mapping is unavailable or fails, the call
// degrades to a heap read with identical semantics, so callers need no
// platform awareness. The caller owns the returned object and must Close
// it when done with the bytes.
func (s *Store) OpenMapped(key string) (*MappedObject, error) {
	return s.openMappedSpan(key, nil)
}

// openMappedSpan is OpenMapped with an optional parent span; digest
// verification is recorded beneath it as a "store.verify" child. A miss
// or a verification failure consults the read-repair fallback like Get;
// repaired bytes are served as a heap-backed view.
func (s *Store) openMappedSpan(key string, span *obs.Span) (*MappedObject, error) {
	m, err := s.openMappedVerified(key, span)
	if err != nil {
		data, rerr := s.repairFrom(key, err)
		if rerr != nil {
			return nil, rerr
		}
		return &MappedObject{data: data}, nil
	}
	return m, nil
}

func (s *Store) openMappedVerified(key string, span *obs.Span) (*MappedObject, error) {
	s.mu.Lock()
	e, ok := s.entries[key]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if err := faultinject.Hit("tracestore.get"); err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	m, err := s.openObject(e)
	if err != nil {
		return nil, &CorruptObjectError{Key: key, Object: e.Object, Reason: err.Error()}
	}
	vstart := time.Now()
	sum := sha256.Sum256(m.data)
	got := digestOf(sum[:])
	span.Child("store.verify", vstart, time.Since(vstart),
		obs.Attr{Key: "bytes", Value: len(m.data)},
		obs.Attr{Key: "mapped", Value: m.mapped},
		obs.Attr{Key: "ok", Value: got == e.Object})
	if got != e.Object {
		_ = m.Close()
		return nil, &CorruptObjectError{
			Key: key, Object: e.Object,
			Reason: fmt.Sprintf("content hashes to %s", got),
		}
	}
	return m, nil
}

// openObject produces the raw (not yet verified) view of an object file,
// preferring a memory mapping and falling back to a heap read.
func (s *Store) openObject(e Entry) (*MappedObject, error) {
	path := s.objectPath(e.Object)
	if os.Getenv(NoMmapEnv) == "" {
		if data, err := mmapPath(path); err == nil {
			return &MappedObject{data: data, mapped: true}, nil
		}
		// Any mapping failure — platform without mmap, an empty object
		// (zero-length mappings are invalid), a filesystem that refuses —
		// degrades to the plain read below.
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &MappedObject{data: data}, nil
}

// mmapPath maps the whole file at path read-only.
func mmapPath(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if fi.Size() == 0 || fi.Size() > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("tracestore: unmappable size %d", fi.Size())
	}
	// The fd can close immediately after: the mapping keeps the pages.
	return mmapFile(f, int(fi.Size()))
}
