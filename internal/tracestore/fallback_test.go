package tracestore

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
)

// TestFallbackRepairsMiss: a read of an absent key consults the
// fallback, serves its bytes, re-persists them, and counts one repair.
func TestFallbackRepairsMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var asked []string
	s.SetFallback(func(key string) ([]byte, error) {
		asked = append(asked, key)
		return []byte("replica copy"), nil
	})
	got, err := s.Get("trace/abc")
	if err != nil || string(got) != "replica copy" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if len(asked) != 1 || asked[0] != "trace/abc" {
		t.Fatalf("fallback asked for %v", asked)
	}
	if s.Repairs() != 1 {
		t.Fatalf("Repairs = %d, want 1", s.Repairs())
	}
	// The repair re-persisted: a local (no-fallback) read now succeeds.
	if got, err := s.GetLocal("trace/abc"); err != nil || string(got) != "replica copy" {
		t.Fatalf("GetLocal after repair = %q, %v", got, err)
	}
}

// TestFallbackRepairsCorrupt: a verification failure triggers the same
// repair path and heals the damaged object on disk.
func TestFallbackRepairsCorrupt(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := mustPut(t, s, "trace/abc", "good bytes")
	if err := os.WriteFile(s.objectPath(e.Object), []byte("bad bytes!"), 0o644); err != nil {
		t.Fatal(err)
	}
	s.SetFallback(func(key string) ([]byte, error) {
		return []byte("good bytes"), nil
	})
	if got, err := s.Get("trace/abc"); err != nil || string(got) != "good bytes" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if s.Repairs() != 1 {
		t.Fatalf("Repairs = %d, want 1", s.Repairs())
	}
	s.SetFallback(nil)
	if got, err := s.Get("trace/abc"); err != nil || string(got) != "good bytes" {
		t.Fatalf("Get after heal = %q, %v (object not re-persisted)", got, err)
	}
}

// TestFallbackFailurePreservesCause: when the fallback cannot help, the
// caller sees the original local error, not the fallback's.
func TestFallbackFailurePreservesCause(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.SetFallback(func(key string) ([]byte, error) {
		return nil, fmt.Errorf("peer down")
	})
	if _, err := s.Get("trace/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	e := mustPut(t, s, "trace/abc", "good bytes")
	if err := os.WriteFile(s.objectPath(e.Object), []byte("bad bytes!"), 0o644); err != nil {
		t.Fatal(err)
	}
	var ce *CorruptObjectError
	if _, err := s.Get("trace/abc"); !errors.As(err, &ce) {
		t.Fatalf("err = %v, want CorruptObjectError", err)
	}
	if s.Repairs() != 0 {
		t.Fatalf("Repairs = %d, want 0", s.Repairs())
	}
}

// TestGetLocalBypassesFallback: GetLocal is the replica-serving read and
// must never recurse into the fallback.
func TestGetLocalBypassesFallback(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.SetFallback(func(key string) ([]byte, error) {
		t.Fatalf("fallback consulted by GetLocal(%q)", key)
		return nil, nil
	})
	if _, err := s.GetLocal("trace/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

// TestOpenMappedRepairs: the mapped read path repairs like Get and serves
// the fetched bytes as a heap-backed view.
func TestOpenMappedRepairs(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := mustPut(t, s, "trace/abc", strings.Repeat("good", 64))
	if err := os.WriteFile(s.objectPath(e.Object), []byte("damaged"), 0o644); err != nil {
		t.Fatal(err)
	}
	s.SetFallback(func(key string) ([]byte, error) {
		return []byte(strings.Repeat("good", 64)), nil
	})
	m, err := s.OpenMapped("trace/abc")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if string(m.Bytes()) != strings.Repeat("good", 64) {
		t.Fatalf("repaired mapped bytes = %q", m.Bytes())
	}
	if m.Mapped() {
		t.Fatal("repaired view claims to be a true mapping")
	}
	if s.Repairs() != 1 {
		t.Fatalf("Repairs = %d, want 1", s.Repairs())
	}
}
