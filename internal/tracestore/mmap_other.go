//go:build !unix

package tracestore

import (
	"errors"
	"os"
)

// mmapFile reports mapping unsupported; OpenMapped degrades to a heap
// read on platforms without a Unix mmap.
func mmapFile(f *os.File, size int) ([]byte, error) {
	return nil, errors.ErrUnsupported
}

func munmapFile(data []byte) error { return nil }
