// Package onepass implements single-pass cache evaluation via the stack
// distance (reuse distance) algorithm of Mattson, Gecsei, Slutz and Traiger
// — reference [17] of the paper, and the technique behind the "one-pass"
// related work the paper contrasts itself with ([16][17], §1).
//
// For a fixed depth D, one pass over the trace yields the non-cold miss
// count of *every* associativity A at once: a reference hits an A-way LRU
// set iff fewer than A distinct other addresses mapping to the same set
// were touched since its previous occurrence. Recording a histogram of
// those per-set stack distances therefore evaluates the whole associativity
// axis in one sweep.
//
// The package serves as an independent oracle for internal/core: the
// analytical postlude phase must produce exactly these counts.
package onepass

import (
	"fmt"

	"github.com/example/cachedse/internal/trace"
)

// Profile is the result of one pass at a fixed depth: a histogram of LRU
// stack distances over the non-cold references.
type Profile struct {
	// Depth is the cache depth (number of sets) profiled.
	Depth int
	// Cold is the number of cold (first-touch) references.
	Cold int
	// Hist[d] counts non-cold references whose set-relative stack distance
	// is d: exactly d distinct other addresses of the same set were touched
	// since the reference's previous occurrence. A reference with distance
	// d hits in every cache with A > d and misses in every cache with
	// A <= d.
	Hist []int
	// Accesses is the trace length.
	Accesses int
}

// Misses returns the number of non-cold misses an A-way LRU cache of this
// depth incurs: the tail mass of the histogram at and above A.
func (p *Profile) Misses(assoc int) int {
	if assoc < 1 {
		panic(fmt.Sprintf("onepass: associativity %d < 1", assoc))
	}
	m := 0
	for d := assoc; d < len(p.Hist); d++ {
		m += p.Hist[d]
	}
	return m
}

// MaxAssoc returns the smallest associativity with zero non-cold misses at
// this depth (the paper's A_zero for the whole level).
func (p *Profile) MaxAssoc() int {
	for d := len(p.Hist) - 1; d >= 0; d-- {
		if p.Hist[d] != 0 {
			return d + 1
		}
	}
	return 1
}

// MinAssoc returns the smallest associativity whose non-cold miss count is
// at most k. The result is at most MaxAssoc().
func (p *Profile) MinAssoc(k int) int {
	if k < 0 {
		k = 0
	}
	// Walk the histogram from the top: tail(A) = misses with assoc A.
	tail := 0
	for d := len(p.Hist) - 1; d >= 1; d-- {
		if tail+p.Hist[d] > k {
			// Associativity d+1 keeps tail <= k; d does not.
			return d + 1
		}
		tail += p.Hist[d]
	}
	return 1
}

// Run profiles a trace at the given depth (must be a power of two >= 1).
func Run(t *trace.Trace, depth int) (*Profile, error) {
	if depth < 1 || depth&(depth-1) != 0 {
		return nil, fmt.Errorf("onepass: depth %d is not a power of two >= 1", depth)
	}
	p := &Profile{Depth: depth, Accesses: t.Len()}
	mask := uint32(depth - 1)
	// Per-set LRU stacks of addresses, most recent first.
	stacks := make([][]uint32, depth)
	for _, r := range t.Refs {
		idx := r.Addr & mask
		stack := stacks[idx]
		pos := -1
		for i, a := range stack {
			if a == r.Addr {
				pos = i
				break
			}
		}
		if pos < 0 {
			p.Cold++
			stacks[idx] = append(stack, 0)
			stack = stacks[idx]
			copy(stack[1:], stack)
			stack[0] = r.Addr
			continue
		}
		if pos >= len(p.Hist) {
			grown := make([]int, pos+1)
			copy(grown, p.Hist)
			p.Hist = grown
		}
		p.Hist[pos]++
		copy(stack[1:pos+1], stack[:pos])
		stack[0] = r.Addr
	}
	return p, nil
}

// Sweep profiles the trace at every power-of-two depth from 1 to maxDepth
// inclusive.
func Sweep(t *trace.Trace, maxDepth int) ([]*Profile, error) {
	if maxDepth < 1 || maxDepth&(maxDepth-1) != 0 {
		return nil, fmt.Errorf("onepass: maxDepth %d is not a power of two >= 1", maxDepth)
	}
	var out []*Profile
	for d := 1; d <= maxDepth; d *= 2 {
		p, err := Run(t, d)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
