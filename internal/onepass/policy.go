package onepass

import (
	"fmt"
	"math/rand"

	"github.com/example/cachedse/internal/trace"
)

// The Mattson profile in this package exploits LRU's inclusion property:
// one stack walk yields every associativity at once. FIFO, Random and
// PLRU have no such property (Belady's anomaly — more ways can miss
// more), so their multi-associativity profile comes from this file's
// sweep instead: one trace traversal maintaining an independent replica
// of the set state for every associativity 1..MaxAssoc. Each replica
// performs exactly the probe/fill/victim sequence of internal/cache's
// simulator, so the sweep's counts are bit-identical to running the
// simulator MaxAssoc times — at one pass over the trace and without the
// per-config allocation.

// ReplPolicy selects the replacement policy of a PolicySweep.
type ReplPolicy uint8

const (
	ReplLRU ReplPolicy = iota
	ReplFIFO
	ReplRandom
	ReplPLRU
)

// String returns the policy name.
func (p ReplPolicy) String() string {
	switch p {
	case ReplLRU:
		return "lru"
	case ReplFIFO:
		return "fifo"
	case ReplRandom:
		return "random"
	case ReplPLRU:
		return "plru"
	}
	return fmt.Sprintf("replpolicy(%d)", uint8(p))
}

// randSeed matches internal/cache's deterministic seed, so the Random
// replicas draw the identical victim sequence: the rng is consulted only
// on a full-set miss, and for a fixed (depth, assoc, line) the full-set
// misses of the replica and the standalone simulator coincide ref by ref.
const randSeed = 0x5eed

// AssocSweep is the result of a PolicySweep: the non-cold miss count of
// every associativity 1..MaxAssoc at one (depth, line size, policy).
type AssocSweep struct {
	Depth     int
	LineWords int
	Policy    ReplPolicy
	// Accesses is the number of references consumed; Cold the compulsory
	// misses (identical across associativities — a first touch can hit
	// nowhere).
	Accesses int
	Cold     int
	// MissByAssoc[a] is the non-cold miss count at associativity a;
	// index 0 is unused.
	MissByAssoc []int
}

// Misses returns the non-cold miss count at the given associativity;
// assoc beyond the sweep's range is clamped to the largest swept value
// (no inclusion property holds, so no extrapolation is attempted).
func (s *AssocSweep) Misses(assoc int) int {
	if assoc < 1 {
		panic(fmt.Sprintf("onepass: associativity %d < 1", assoc))
	}
	if assoc >= len(s.MissByAssoc) {
		assoc = len(s.MissByAssoc) - 1
	}
	return s.MissByAssoc[assoc]
}

// assocState is one replica: the set array of a (depth, assoc) cache,
// flattened way-major.
type assocState struct {
	assoc int
	tags  []uint32
	valid []bool
	// stamp is lastUse for LRU, arrival for FIFO; unused otherwise.
	stamp []int
	// plru holds the per-set tree bits, plruStride (the next power of two
	// above assoc — the implicit heap's node count) per set.
	plru       []bool
	plruStride int
	rng        *rand.Rand
}

// PolicySweep evaluates every associativity 1..maxAssoc of one cache
// depth under one replacement policy in a single pass over the trace.
// lineWords 0 means one-word lines. Replacement semantics replicate
// internal/cache.Access exactly: probe in way order, fill invalid-first,
// then evict per policy (write-back write-allocate — writes behave like
// reads for miss accounting).
func PolicySweep(t *trace.Trace, depth, maxAssoc, lineWords int, p ReplPolicy) (*AssocSweep, error) {
	if depth < 1 || depth&(depth-1) != 0 {
		return nil, fmt.Errorf("onepass: depth %d is not a power of two >= 1", depth)
	}
	if maxAssoc < 1 {
		return nil, fmt.Errorf("onepass: max associativity %d < 1", maxAssoc)
	}
	if lineWords == 0 {
		lineWords = 1
	}
	if lineWords < 1 || lineWords&(lineWords-1) != 0 {
		return nil, fmt.Errorf("onepass: line size %d words is not a power of two >= 1", lineWords)
	}
	if p > ReplPLRU {
		return nil, fmt.Errorf("onepass: invalid policy %d", p)
	}

	var lineShift, depthBits uint
	for ls := lineWords; ls > 1; ls >>= 1 {
		lineShift++
	}
	for d := depth; d > 1; d >>= 1 {
		depthBits++
	}
	idxMask := uint32(depth - 1)

	states := make([]*assocState, maxAssoc+1)
	for a := 1; a <= maxAssoc; a++ {
		st := &assocState{
			assoc: a,
			tags:  make([]uint32, depth*a),
			valid: make([]bool, depth*a),
		}
		switch p {
		case ReplLRU, ReplFIFO:
			st.stamp = make([]int, depth*a)
		case ReplRandom:
			st.rng = rand.New(rand.NewSource(randSeed))
		case ReplPLRU:
			st.plruStride = 1
			for st.plruStride < a {
				st.plruStride <<= 1
			}
			st.plru = make([]bool, depth*st.plruStride)
		}
		states[a] = st
	}

	out := &AssocSweep{
		Depth:       depth,
		LineWords:   lineWords,
		Policy:      p,
		MissByAssoc: make([]int, maxAssoc+1),
	}
	seen := make(map[uint32]bool, 1024)
	clock := 0
	for _, r := range t.Refs {
		clock++
		out.Accesses++
		lineAddr := r.Addr >> lineShift
		idx := int(lineAddr & idxMask)
		tag := lineAddr >> depthBits
		cold := !seen[lineAddr]
		if cold {
			out.Cold++
			seen[lineAddr] = true
		}
		for a := 1; a <= maxAssoc; a++ {
			if states[a].access(idx, tag, clock, p) {
				continue // hit
			}
			if !cold {
				out.MissByAssoc[a]++
			}
		}
	}
	return out, nil
}

// access probes one replica's set for tag, updating replacement state,
// and reports a hit. On a miss it fills an invalid way or evicts per
// policy — the same sequence as cache.Access with write-allocate.
func (st *assocState) access(idx int, tag uint32, clock int, p ReplPolicy) bool {
	base := idx * st.assoc
	for w := 0; w < st.assoc; w++ {
		if st.valid[base+w] && st.tags[base+w] == tag {
			switch p {
			case ReplLRU:
				st.stamp[base+w] = clock
			case ReplPLRU:
				plruTouch(st.plruSet(idx), st.assoc, w)
			}
			return true
		}
	}
	victim := -1
	for w := 0; w < st.assoc; w++ {
		if !st.valid[base+w] {
			victim = w
			break
		}
	}
	if victim < 0 {
		switch p {
		case ReplLRU, ReplFIFO:
			victim = 0
			best := st.stamp[base]
			for w := 1; w < st.assoc; w++ {
				if st.stamp[base+w] < best {
					victim, best = w, st.stamp[base+w]
				}
			}
		case ReplRandom:
			victim = st.rng.Intn(st.assoc)
		case ReplPLRU:
			victim = plruVictim(st.plruSet(idx), st.assoc)
		}
	}
	st.tags[base+victim] = tag
	st.valid[base+victim] = true
	if p == ReplLRU || p == ReplFIFO {
		st.stamp[base+victim] = clock
	}
	if p == ReplPLRU {
		plruTouch(st.plruSet(idx), st.assoc, victim)
	}
	return false
}

// plruSet returns set idx's tree bits.
func (st *assocState) plruSet(idx int) []bool {
	base := idx * st.plruStride
	return st.plru[base : base+st.plruStride]
}

// plruTouch and plruVictim mirror internal/cache's midpoint-bisection
// PLRU tree bit for bit (node i's children are 2i+1/2i+2; bits[node]
// true means the next victim lies right).

func plruTouch(bits []bool, n, w int) {
	node, lo, hi := 0, 0, n
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if w < mid {
			bits[node] = true
			node = 2*node + 1
			hi = mid
		} else {
			bits[node] = false
			node = 2*node + 2
			lo = mid
		}
	}
}

func plruVictim(bits []bool, n int) int {
	node, lo, hi := 0, 0, n
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if bits[node] {
			node = 2*node + 2
			lo = mid
		} else {
			node = 2*node + 1
			hi = mid
		}
	}
	return lo
}
