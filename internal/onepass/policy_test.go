package onepass

import (
	"math/rand"
	"testing"

	"github.com/example/cachedse/internal/cache"
	"github.com/example/cachedse/internal/trace"
)

func synthTrace(n int, seed int64) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	t := trace.New(n)
	for i := 0; i < n; i++ {
		var addr uint32
		// Mix a hot working set with cold scans so every policy sees both
		// reuse and eviction pressure.
		switch rng.Intn(3) {
		case 0:
			addr = uint32(rng.Intn(64))
		case 1:
			addr = uint32(rng.Intn(512))
		default:
			addr = uint32(rng.Intn(1 << 12))
		}
		kind := trace.DataRead
		switch rng.Intn(4) {
		case 0:
			kind = trace.DataWrite
		case 1:
			kind = trace.Instr
		}
		t.Append(trace.Ref{Addr: addr, Kind: kind})
	}
	return t
}

// TestPolicySweepMatchesSimulator pins the sweep's contract: for every
// policy, depth, line size and associativity, one pass produces exactly
// the miss counts the full simulator produces config by config — Random
// included, because both draw from the same deterministic seed at the
// same full-set-miss points.
func TestPolicySweepMatchesSimulator(t *testing.T) {
	tr := synthTrace(6000, 1)
	policies := []struct {
		p ReplPolicy
		r cache.Replacement
	}{
		{ReplLRU, cache.LRU},
		{ReplFIFO, cache.FIFO},
		{ReplRandom, cache.Random},
		{ReplPLRU, cache.PLRU},
	}
	const maxAssoc = 5 // odd cap: exercises PLRU's non-power-of-two tree
	for _, depth := range []int{1, 4, 16, 64} {
		for _, line := range []int{1, 4} {
			for _, pol := range policies {
				sw, err := PolicySweep(tr, depth, maxAssoc, line, pol.p)
				if err != nil {
					t.Fatal(err)
				}
				for a := 1; a <= maxAssoc; a++ {
					cfg := cache.Config{Depth: depth, Assoc: a, LineWords: line, Repl: pol.r}
					res, err := cache.Simulate(cfg, tr)
					if err != nil {
						t.Fatal(err)
					}
					if sw.MissByAssoc[a] != res.Misses {
						t.Errorf("%s D=%d A=%d lw=%d: sweep misses %d, simulator %d",
							pol.p, depth, a, line, sw.MissByAssoc[a], res.Misses)
					}
					if sw.Cold != res.ColdMisses {
						t.Errorf("%s D=%d A=%d lw=%d: sweep cold %d, simulator %d",
							pol.p, depth, a, line, sw.Cold, res.ColdMisses)
					}
				}
			}
		}
	}
}

// TestPolicySweepClampsAndValidates covers the accessor clamp and the
// argument checks.
func TestPolicySweepClampsAndValidates(t *testing.T) {
	tr := synthTrace(500, 2)
	sw, err := PolicySweep(tr, 8, 3, 1, ReplFIFO)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sw.Misses(10), sw.MissByAssoc[3]; got != want {
		t.Errorf("Misses(10) = %d, want clamp to Misses(3) = %d", got, want)
	}
	for _, bad := range []struct {
		depth, maxAssoc, line int
		p                     ReplPolicy
	}{
		{3, 2, 1, ReplFIFO},
		{8, 0, 1, ReplFIFO},
		{8, 2, 3, ReplFIFO},
		{8, 2, 1, ReplPolicy(9)},
	} {
		if _, err := PolicySweep(tr, bad.depth, bad.maxAssoc, bad.line, bad.p); err == nil {
			t.Errorf("PolicySweep(%+v) accepted invalid arguments", bad)
		}
	}
}

// TestPolicySweepEmptyTrace pins the degenerate case.
func TestPolicySweepEmptyTrace(t *testing.T) {
	sw, err := PolicySweep(trace.New(0), 4, 2, 1, ReplPLRU)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Accesses != 0 || sw.Cold != 0 || sw.MissByAssoc[1] != 0 || sw.MissByAssoc[2] != 0 {
		t.Errorf("empty trace sweep = %+v, want all zeros", sw)
	}
}
