package onepass

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/example/cachedse/internal/cache"
	"github.com/example/cachedse/internal/trace"
)

func reads(addrs ...uint32) *trace.Trace {
	return trace.FromAddrs(trace.DataRead, addrs)
}

func TestRunRejectsBadDepth(t *testing.T) {
	for _, d := range []int{0, -1, 3, 6} {
		if _, err := Run(reads(1), d); err == nil {
			t.Errorf("Run(depth=%d) succeeded, want error", d)
		}
	}
}

func TestRunEmptyTrace(t *testing.T) {
	p, err := Run(trace.New(0), 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cold != 0 || len(p.Hist) != 0 || p.Misses(1) != 0 {
		t.Fatalf("profile of empty trace = %+v", p)
	}
	if p.MaxAssoc() != 1 || p.MinAssoc(0) != 1 {
		t.Fatalf("empty trace MaxAssoc=%d MinAssoc=%d, want 1, 1", p.MaxAssoc(), p.MinAssoc(0))
	}
}

func TestRunSimpleDistances(t *testing.T) {
	// Depth 1: everything shares one set.
	// Sequence 1,2,3,1: the final 1 has two distinct intervening addrs.
	p, err := Run(reads(1, 2, 3, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cold != 3 {
		t.Fatalf("Cold = %d, want 3", p.Cold)
	}
	if len(p.Hist) != 3 || p.Hist[2] != 1 {
		t.Fatalf("Hist = %v, want distance-2 count of 1", p.Hist)
	}
	// Misses: A=1 or 2 -> 1 miss; A=3 -> 0.
	if p.Misses(1) != 1 || p.Misses(2) != 1 || p.Misses(3) != 0 {
		t.Fatalf("Misses = %d,%d,%d", p.Misses(1), p.Misses(2), p.Misses(3))
	}
	if p.MaxAssoc() != 3 {
		t.Fatalf("MaxAssoc = %d, want 3", p.MaxAssoc())
	}
}

func TestRunSetSeparation(t *testing.T) {
	// Depth 2: even/odd addresses go to different sets, so the odd stream
	// can't disturb the even one.
	p, err := Run(reads(0, 1, 3, 5, 0), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Final 0: no intervening even addresses -> distance 0 (a hit at A=1).
	if p.Misses(1) != 0 {
		t.Fatalf("Misses(1) = %d, want 0", p.Misses(1))
	}
	if p.Cold != 4 {
		t.Fatalf("Cold = %d, want 4", p.Cold)
	}
}

func TestMissesPanicsOnBadAssoc(t *testing.T) {
	p, _ := Run(reads(1), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Misses(0) did not panic")
		}
	}()
	p.Misses(0)
}

func TestMinAssoc(t *testing.T) {
	// Build distances: 1,2,3,1,2,3,1 at depth 1.
	// Occurrences: 1@0,3,6; 2@1,4; 3@2,5.
	// 1@3: distance 2; 2@4: distance 2; 3@5: distance 2; 1@6: distance 2.
	p, err := Run(reads(1, 2, 3, 1, 2, 3, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Hist[2] != 4 {
		t.Fatalf("Hist = %v, want four distance-2 entries", p.Hist)
	}
	cases := []struct{ k, want int }{
		{0, 3}, {1, 3}, {3, 3}, {4, 1}, {100, 1}, {-1, 3},
	}
	for _, c := range cases {
		if got := p.MinAssoc(c.k); got != c.want {
			t.Errorf("MinAssoc(%d) = %d, want %d", c.k, got, c.want)
		}
	}
}

func TestSweepDepths(t *testing.T) {
	ps, err := Sweep(reads(0, 1, 2, 3, 0, 1, 2, 3), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 4 {
		t.Fatalf("Sweep returned %d profiles, want 4 (depths 1,2,4,8)", len(ps))
	}
	wantDepths := []int{1, 2, 4, 8}
	for i, p := range ps {
		if p.Depth != wantDepths[i] {
			t.Errorf("profile %d depth = %d, want %d", i, p.Depth, wantDepths[i])
		}
	}
	// Depth 4 and 8 fit the 4-address working set direct-mapped: no misses.
	if ps[2].Misses(1) != 0 || ps[3].Misses(1) != 0 {
		t.Error("expected zero misses at depths 4 and 8")
	}
	// Depth 1 direct-mapped misses everything non-cold: 4 misses.
	if ps[0].Misses(1) != 4 {
		t.Errorf("depth-1 Misses(1) = %d, want 4", ps[0].Misses(1))
	}
}

func TestSweepRejectsBadMax(t *testing.T) {
	if _, err := Sweep(reads(1), 5); err == nil {
		t.Fatal("Sweep(maxDepth=5) succeeded, want error")
	}
}

// Property: for random traces, depths and associativities, the one-pass
// miss count equals the event-driven LRU simulator's non-cold miss count.
func TestQuickMatchesSimulator(t *testing.T) {
	f := func(addrBytes []uint8, depthPow, assocRaw uint8) bool {
		depth := 1 << (depthPow % 5)
		assoc := 1 + int(assocRaw%6)
		tr := trace.New(0)
		for _, ab := range addrBytes {
			tr.Append(trace.Ref{Addr: uint32(ab), Kind: trace.DataRead})
		}
		p, err := Run(tr, depth)
		if err != nil {
			return false
		}
		res, err := cache.Simulate(cache.Config{Depth: depth, Assoc: assoc}, tr)
		if err != nil {
			return false
		}
		return p.Misses(assoc) == res.Misses && p.Cold == res.ColdMisses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: MinAssoc is the true minimum — it meets the budget and A-1
// does not (unless A == 1).
func TestQuickMinAssocIsMinimal(t *testing.T) {
	f := func(addrBytes []uint8, kRaw uint8) bool {
		tr := trace.New(0)
		for _, ab := range addrBytes {
			tr.Append(trace.Ref{Addr: uint32(ab % 32), Kind: trace.DataRead})
		}
		p, err := Run(tr, 4)
		if err != nil {
			return false
		}
		k := int(kRaw % 16)
		a := p.MinAssoc(k)
		if p.Misses(a) > k {
			return false
		}
		if a > 1 && p.Misses(a-1) <= k {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: misses are monotonically non-increasing in depth for
// direct-mapped... NOT true in general (depth changes mapping), but the
// histogram tail IS monotone in associativity. Verify that.
func TestQuickMissesMonotoneInAssoc(t *testing.T) {
	f := func(addrBytes []uint8) bool {
		tr := trace.New(0)
		for _, ab := range addrBytes {
			tr.Append(trace.Ref{Addr: uint32(ab), Kind: trace.DataRead})
		}
		p, err := Run(tr, 2)
		if err != nil {
			return false
		}
		prev := p.Misses(1)
		for a := 2; a <= 10; a++ {
			m := p.Misses(a)
			if m > prev {
				return false
			}
			prev = m
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRunDepth256(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	tr := trace.New(0)
	for i := 0; i < 100000; i++ {
		tr.Append(trace.Ref{Addr: uint32(rng.Intn(8192)), Kind: trace.DataRead})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(tr, 256); err != nil {
			b.Fatal(err)
		}
	}
}
